package bench

import "testing"

// Each Table 2 benchmark must run correctly (every use is verified against
// a host-side gold) and show a dynamic-compilation speedup.
func checkRow(t *testing.T, m *Measurement, err error, minSpeedup float64) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", m)
	if m.Speedup < minSpeedup {
		t.Errorf("%s: speedup %.2f < %.2f", m.Name, m.Speedup, minSpeedup)
	}
	if m.Breakeven <= 0 {
		t.Errorf("%s: breakeven %d (never profitable?)", m.Name, m.Breakeven)
	}
	if m.StitchedInsts == 0 {
		t.Errorf("%s: nothing stitched", m.Name)
	}
	if m.Overhead == 0 {
		t.Errorf("%s: no overhead recorded", m.Name)
	}
}

func TestCalculatorRow(t *testing.T) {
	m, err := Calculator(Config{Uses: 300})
	checkRow(t, m, err, 1.5)
	if m.Stitch.BranchesResolved == 0 || m.Stitch.LoopIterations == 0 {
		t.Error("calculator should resolve the opcode switch and unroll")
	}
}

func TestScalarMatrixRow(t *testing.T) {
	m, err := ScalarMatrix(Config{Uses: 12})
	checkRow(t, m, err, 1.2)
	if m.Compiles != 12 {
		t.Errorf("keyed region: %d compiles for 12 scalars", m.Compiles)
	}
	if m.Stitch.StrengthReductions == 0 {
		t.Error("scalar multiply should strength-reduce")
	}
}

func TestSparseRows(t *testing.T) {
	m, err := measure(sparseBenchmark(40, 4, 6, "40x40 test"), Config{})
	checkRow(t, m, err, 1.2)
	if m.Stitch.LoopIterations == 0 {
		t.Error("sparse should unroll nested loops")
	}
	if m.Stitch.LargeConsts == 0 {
		t.Error("float matrix values should go to the large-constant table")
	}
}

func TestDispatcherRow(t *testing.T) {
	m, err := Dispatcher(Config{Uses: 400})
	checkRow(t, m, err, 1.3)
}

func TestSorterRows(t *testing.T) {
	m, err := Sorter4(Config{Uses: 2})
	checkRow(t, m, err, 1.05)
	m32, err := Sorter32(Config{Uses: 2})
	checkRow(t, m32, err, 1.05)
}

// Table 3's optimization pattern must match the paper's: every benchmark
// uses several dynamic optimizations; the calculator uses all six.
func TestTable3Matrix(t *testing.T) {
	rows := []*Measurement{}
	for _, f := range []func(Config) (*Measurement, error){Calculator, Dispatcher} {
		m, err := f(Config{Uses: 60})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, m)
	}
	t3 := Table3(rows)
	calc := t3[0]
	if !(calc.ConstantFolding && calc.StaticBranchElimination && calc.LoadElimination &&
		calc.DeadCodeElimination && calc.CompleteLoopUnrolling && calc.StrengthReduction) {
		t.Errorf("calculator should apply all six optimizations: %+v", calc)
	}
	disp := t3[1]
	if !(disp.StaticBranchElimination && disp.LoadElimination && disp.CompleteLoopUnrolling) {
		t.Errorf("dispatcher pattern wrong: %+v", disp)
	}
}

// Register actions (section 5) must beat plain stitching on the calculator.
func TestRegisterActionsBeatPlainStitching(t *testing.T) {
	base, err := Calculator(Config{Uses: 200})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Calculator(Config{Uses: 200, RegisterActions: true})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stitch.LoadsPromoted == 0 || ra.Stitch.StoresPromoted == 0 {
		t.Fatalf("no promotions: %+v", ra.Stitch)
	}
	if ra.Speedup <= base.Speedup {
		t.Errorf("register actions %.2f should beat plain %.2f", ra.Speedup, base.Speedup)
	}
	t.Logf("plain %.2f, register actions %.2f (paper: 1.7 -> 4.1)", base.Speedup, ra.Speedup)
}

// The strength-reduction ablation must cost cycles on the scalar benchmark.
func TestStrengthReductionAblation(t *testing.T) {
	on, err := ScalarMatrix(Config{Uses: 8})
	if err != nil {
		t.Fatal(err)
	}
	off, err := ScalarMatrix(Config{Uses: 8, NoStrengthReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.DynPerUnit <= on.DynPerUnit {
		t.Errorf("ablated %.2f should be slower than %.2f cycles/unit",
			off.DynPerUnit, on.DynPerUnit)
	}
}

// The paper's headline: speedups over the suite range roughly 1.2-1.8 (ours
// run 1.1-6.5 depending on how lean the baseline interpreter is; every
// benchmark must be >= 1.1 and the suite must span a meaningful range).
func TestHeadlineSpeedupRange(t *testing.T) {
	rows := []*Measurement{}
	for _, f := range []func(Config) (*Measurement, error){
		Calculator, Dispatcher, Sorter4,
	} {
		m, err := f(Config{Uses: 100})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, m)
	}
	min, max := rows[0].Speedup, rows[0].Speedup
	for _, m := range rows {
		if m.Speedup < min {
			min = m.Speedup
		}
		if m.Speedup > max {
			max = m.Speedup
		}
	}
	if min < 1.1 {
		t.Errorf("minimum speedup %.2f < 1.1", min)
	}
	if max < 1.5 {
		t.Errorf("maximum speedup %.2f < 1.5", max)
	}
}

func TestCacheSimRow(t *testing.T) {
	m, err := CacheSim(Config{Uses: 500})
	checkRow(t, m, err, 2.0)
	if m.Stitch.StrengthReductions < 3 {
		t.Errorf("cache lookup should reduce both divides and the modulus: %d",
			m.Stitch.StrengthReductions)
	}
}

// The merged one-pass mode (paper section 7) must cut set-up overhead on
// the set-up-heavy sparse benchmark while computing the same results.
func TestMergedStitchCutsOverhead(t *testing.T) {
	two, err := measure(sparseBenchmark(60, 5, 4, "60x60 test"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := measure(sparseBenchmark(60, 5, 4, "60x60 test"), Config{MergedStitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if one.SetupCycles >= two.SetupCycles {
		t.Errorf("merged set-up %d should beat two-pass %d", one.SetupCycles, two.SetupCycles)
	}
	if one.DynPerUnit != two.DynPerUnit {
		t.Errorf("steady-state cycles must be identical: %.1f vs %.1f",
			one.DynPerUnit, two.DynPerUnit)
	}
	t.Logf("sparse set-up: two-pass %d cycles, merged %d cycles", two.SetupCycles, one.SetupCycles)
}

// The parallel harness must show the fleet paying for exactly one stitch
// per distinct key when sharing is on, and machines x keys when it is off.
func TestParallelMachinesStitchCounts(t *testing.T) {
	shared, err := ParallelMachines(4, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Stitches != uint64(shared.Keys) {
		t.Errorf("shared: %d stitches for %d keys", shared.Stitches, shared.Keys)
	}
	if shared.SharedHits == 0 {
		t.Error("shared: no machine adopted a cached segment")
	}
	private, err := ParallelMachines(4, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(4 * private.Keys); private.Stitches != want {
		t.Errorf("noShare: %d stitches, want %d", private.Stitches, want)
	}
}
