package bench

import (
	"fmt"
	"math"

	"dyncc/internal/vm"
)

// SparseSource is sparse matrix-vector multiply (Table 2 rows 3-4). The
// matrix — its sparsity pattern *and* values — is the run-time constant:
// both loops are completely unrolled (nested unrolled loops, nested table
// records) and the column indices and element values are embedded in the
// stitched code.
const SparseSource = `
/* CSR: rowstart[nrows+1], colidx[nnz], vals[nnz] (float) */
int spmv(int *rowstart, int *colidx, float *vals, float *x, float *y, int nrows) {
    dynamicRegion (rowstart, colidx, vals, nrows) {
        int r;
        unrolled for (r = 0; r < nrows; r++) {
            float sum = 0.0;
            int lo = rowstart[r];
            int hi = rowstart[r+1];
            int k;
            unrolled for (k = lo; k < hi; k++) {
                sum = sum + vals[k] * x dynamic[colidx[k]];
            }
            y dynamic[r] = sum;
        }
    }
    return 0;
}`

type sparseState struct {
	rowstart, colidx, vals, x, y int64
	nrows                        int64
	perRow                       int
	// host copies for verification
	hRow  []int64
	hCol  []int64
	hVal  []float64
	hXadr int64
}

// buildSparse constructs an n x n CSR matrix with perRow elements per row
// (pseudo-random columns, deterministic).
func buildSparse(n, perRow int) func(m *vm.Machine) (any, error) {
	return func(m *vm.Machine) (any, error) {
		nnz := n * perRow
		alloc := func(k int64) (int64, error) { return m.Alloc(k) }
		rowstart, err := alloc(int64(n + 1))
		if err != nil {
			return nil, err
		}
		colidx, _ := alloc(int64(nnz))
		vals, _ := alloc(int64(nnz))
		x, _ := alloc(int64(n))
		y, err := alloc(int64(n))
		if err != nil {
			return nil, err
		}
		st := &sparseState{rowstart: rowstart, colidx: colidx, vals: vals,
			x: x, y: y, nrows: int64(n), perRow: perRow, hXadr: x}
		rng := uint64(88172645463325252)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		k := 0
		for r := 0; r <= n; r++ {
			m.Mem[rowstart+int64(r)] = int64(k)
			st.hRow = append(st.hRow, int64(k))
			if r == n {
				break
			}
			for e := 0; e < perRow; e++ {
				c := int64(next() % uint64(n))
				v := float64(next()%1000)/100.0 - 5.0
				m.Mem[colidx+int64(k)] = c
				m.Mem[vals+int64(k)] = int64(math.Float64bits(v))
				st.hCol = append(st.hCol, c)
				st.hVal = append(st.hVal, v)
				k++
			}
		}
		return st, nil
	}
}

func useSparse(m *vm.Machine, state any, i int) error {
	st := state.(*sparseState)
	// New x vector each multiplication.
	for j := int64(0); j < st.nrows; j++ {
		m.Mem[st.x+j] = int64(math.Float64bits(float64((j*7+int64(i))%13) - 6.0))
	}
	if _, err := m.Call("spmv", st.rowstart, st.colidx, st.vals, st.x, st.y, st.nrows); err != nil {
		return err
	}
	// Verify one row.
	r := int64(i) % st.nrows
	want := 0.0
	for k := st.hRow[r]; k < st.hRow[r+1]; k++ {
		want += st.hVal[k] * math.Float64frombits(uint64(m.Mem[st.x+st.hCol[k]]))
	}
	got := math.Float64frombits(uint64(m.Mem[st.y+r]))
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		return fmt.Errorf("spmv row %d: got %g want %g", r, got, want)
	}
	return nil
}

func sparseBenchmark(n, perRow, uses int, config string) *benchmark {
	return &benchmark{
		name:        "sparse matrix-vector multiply",
		config:      config,
		unit:        "matrix multiplications",
		source:      SparseSource,
		uses:        uses,
		unitsPerUse: 1,
		build:       buildSparse(n, perRow),
		use:         useSparse,
	}
}

// SparseLarge measures Table 2 row 3 (200x200, 10 elements/row).
func SparseLarge(cfg Config) (*Measurement, error) {
	return measure(sparseBenchmark(200, 10, 30, "200x200, 10/row, 5% density"), cfg)
}

// SparseSmall measures Table 2 row 4 (96x96, 5 elements/row).
func SparseSmall(cfg Config) (*Measurement, error) {
	return measure(sparseBenchmark(96, 5, 60, "96x96, 5/row, 5% density"), cfg)
}
