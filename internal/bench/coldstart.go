package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/segio"
)

// Cold-start defaults: a sweep over working-set sizes so the result shows
// how restart-to-warm scales with the number of persisted specializations.
var coldStartSizes = []int{64, 256, 1024}

// ColdStartRow is one working-set size of the restart benchmark: the wall
// time for a fresh runtime (a simulated process restart) to serve each of
// Keys distinct specializations once, against an empty store (every key
// stitches) and against a store a previous process populated (every key is
// served from disk).
type ColdStartRow struct {
	Keys int `json:"keys"`

	// Restart-to-warm wall clock: total serve time for the key sweep, and
	// per-call quantiles.
	EmptyTotal     time.Duration `json:"empty_total_ns"`
	PopulatedTotal time.Duration `json:"populated_total_ns"`
	EmptyP50       time.Duration `json:"empty_p50_ns"`
	EmptyP99       time.Duration `json:"empty_p99_ns"`
	PopulatedP50   time.Duration `json:"populated_p50_ns"`
	PopulatedP99   time.Duration `json:"populated_p99_ns"`
	// Speedup is EmptyTotal / PopulatedTotal — how much faster the restart
	// warms when the store already holds the working set.
	Speedup float64 `json:"speedup"`

	// Store accounting: the empty run must persist every key, the
	// populated run must serve every key from the store without stitching.
	StorePuts         uint64 `json:"store_puts"`
	StoreHits         uint64 `json:"store_hits"`
	PopulatedStitches uint64 `json:"populated_stitches"`
	StoreBytes        int64  `json:"store_bytes"`
}

// ColdStartResult is the -coldstart report: restart-to-warm versus
// persisted-cache size, populated versus empty store (the warm-restart
// result the persistent tier exists for).
type ColdStartResult struct {
	Rows []ColdStartRow `json:"rows"`
}

// coldStartServe compiles the cold-burst kernel over store and serves keys
// 1..keys once each on a fresh machine, returning the total and per-call
// wall clock (sorted) and the cache stats after close (so publisher work is
// drained and visible).
func coldStartServe(store segio.Store, keys int) (time.Duration, []time.Duration, rtr.CacheStats, error) {
	var zero rtr.CacheStats
	c, err := core.Compile(coldSrc, core.Config{
		Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{Store: store, StoreQueue: 4 * keys},
	})
	if err != nil {
		return 0, nil, zero, fmt.Errorf("coldstart compile: %w", err)
	}
	m := c.NewMachine(0)
	lats := make([]time.Duration, 0, keys)
	t0 := time.Now()
	for k := int64(1); k <= int64(keys); k++ {
		tc := time.Now()
		got, err := m.Call("burst", k, 3)
		lat := time.Since(tc)
		if err != nil {
			c.Runtime.Close()
			return 0, nil, zero, fmt.Errorf("coldstart key %d: %w", k, err)
		}
		if got != coldExpect(k, 3) {
			c.Runtime.Close()
			return 0, nil, zero, fmt.Errorf("burst(%d,3) = %d, want %d", k, got, coldExpect(k, 3))
		}
		lats = append(lats, lat)
	}
	total := time.Since(t0)
	c.Runtime.Close() // drain the store publisher before the stats read
	stats := c.Runtime.CacheStats()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return total, lats, stats, nil
}

// dirBytes sums the store directory's blob sizes.
func dirBytes(store *segio.DirStore) int64 {
	var total int64
	n, err := store.Len()
	if err != nil || n == 0 {
		return 0
	}
	_ = walkSize(store.Root(), &total)
	return total
}

func walkSize(root string, total *int64) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		p := root + string(os.PathSeparator) + e.Name()
		if e.IsDir() {
			if err := walkSize(p, total); err != nil {
				return err
			}
			continue
		}
		if fi, err := e.Info(); err == nil {
			*total += fi.Size()
		}
	}
	return nil
}

// ColdStart measures restart-to-warm against the persistent (level-0) code
// cache for each working-set size: one process serves the key sweep against
// an empty on-disk store (stitching and persisting every specialization),
// then a fresh runtime over the populated store serves the same sweep from
// disk. nil sizes selects the standard sweep (64, 256, 1024 keys).
func ColdStart(sizes []int) (*ColdStartResult, error) {
	if len(sizes) == 0 {
		sizes = coldStartSizes
	}
	res := &ColdStartResult{}
	for _, keys := range sizes {
		dir, err := os.MkdirTemp("", "dyncc-coldstart-*")
		if err != nil {
			return nil, err
		}
		store, err := segio.OpenDir(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		emptyTotal, emptyLats, ecs, err := coldStartServe(store, keys)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if ecs.StoreHits != 0 || int(ecs.StorePuts) != keys {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("coldstart empty run: %d hits, %d/%d puts (errors %d)",
				ecs.StoreHits, ecs.StorePuts, keys, ecs.StoreErrors)
		}
		popTotal, popLats, pcs, err := coldStartServe(store, keys)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if int(pcs.StoreHits) != keys {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("coldstart populated run: %d/%d store hits (%d stitches, errors %d)",
				pcs.StoreHits, keys, pcs.Stitches, pcs.StoreErrors)
		}
		row := ColdStartRow{
			Keys:              keys,
			EmptyTotal:        emptyTotal,
			PopulatedTotal:    popTotal,
			EmptyP50:          quantile(emptyLats, 0.50),
			EmptyP99:          quantile(emptyLats, 0.99),
			PopulatedP50:      quantile(popLats, 0.50),
			PopulatedP99:      quantile(popLats, 0.99),
			StorePuts:         ecs.StorePuts,
			StoreHits:         pcs.StoreHits,
			PopulatedStitches: pcs.Stitches,
			StoreBytes:        dirBytes(store),
		}
		if popTotal > 0 {
			row.Speedup = float64(emptyTotal) / float64(popTotal)
		}
		res.Rows = append(res.Rows, row)
		os.RemoveAll(dir)
	}
	return res, nil
}

// PrintColdStart renders the restart-to-warm report.
func PrintColdStart(w io.Writer, r *ColdStartResult) {
	fmt.Fprintf(w, "restart-to-warm: serve every key once on a fresh runtime (wall clock)\n")
	fmt.Fprintf(w, "  %6s  %12s  %12s  %8s  %10s  %10s  %9s\n",
		"keys", "empty store", "populated", "speedup", "empty p99", "popul p99", "store KiB")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %6d  %12v  %12v  %7.2fx  %10v  %10v  %9.1f\n",
			row.Keys, row.EmptyTotal.Round(time.Microsecond),
			row.PopulatedTotal.Round(time.Microsecond), row.Speedup,
			row.EmptyP99, row.PopulatedP99, float64(row.StoreBytes)/1024)
	}
}
