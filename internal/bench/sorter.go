package bench

import (
	"fmt"

	"dyncc/internal/vm"
)

// SorterSource is the QuickSort record sorter (Table 2 rows 6-7, extended
// from [KEH93]). The key descriptor — how many keys, each key's type and
// ordering — is the run-time constant; the comparator is unrolled over the
// keys with each key-type switch eliminated.
const SorterSource = `
/* key types: 0 int asc, 1 int desc, 2 unsigned asc, 3 boolean asc */
int compareRec(int *a, int *b, int *desc, int nkeys) {
    dynamicRegion (desc, nkeys) {
        int i;
        unrolled for (i = 0; i < nkeys; i++) {
            int t = desc[i];
            int av = a dynamic[i];
            int bv = b dynamic[i];
            switch (t) {
            case 0:
                if (av < bv) return -1;
                if (av > bv) return 1;
                break;
            case 1:
                if (av > bv) return -1;
                if (av < bv) return 1;
                break;
            case 2: {
                unsigned ua = (unsigned)av;
                unsigned ub = (unsigned)bv;
                if (ua < ub) return -1;
                if (ua > ub) return 1;
                break;
            }
            case 3: {
                int ab = av != 0;
                int bb = bv != 0;
                if (ab < bb) return -1;
                if (ab > bb) return 1;
                break;
            }
            }
        }
        return 0;
    }
    return 0;
}

void swapRec(int *recs, int stride, int i, int j) {
    int k;
    for (k = 0; k < stride; k++) {
        int t = recs[i*stride+k];
        recs[i*stride+k] = recs[j*stride+k];
        recs[j*stride+k] = t;
    }
}

void qsortRecs(int *recs, int stride, int lo, int hi, int *desc, int nkeys) {
    if (lo >= hi) return;
    int p = lo + (hi - lo) / 2;
    swapRec(recs, stride, p, hi);
    int store = lo;
    int i;
    for (i = lo; i < hi; i++) {
        if (compareRec(recs + i*stride, recs + hi*stride, desc, nkeys) < 0) {
            swapRec(recs, stride, i, store);
            store++;
        }
    }
    swapRec(recs, stride, store, hi);
    qsortRecs(recs, stride, lo, store-1, desc, nkeys);
    qsortRecs(recs, stride, store+1, hi, desc, nkeys);
}

int sortRecords(int *recs, int stride, int n, int *desc, int nkeys) {
    qsortRecs(recs, stride, 0, n-1, desc, nkeys);
    return 0;
}`

type sorterState struct {
	recs, desc int64
	n, nkeys   int64
	rng        uint64
	keyTypes   []int64
}

const sorterRecords = 600

func buildSorter(nkeys int) func(m *vm.Machine) (any, error) {
	return func(m *vm.Machine) (any, error) {
		keyTypes := make([]int64, nkeys)
		for i := range keyTypes {
			keyTypes[i] = int64(i % 4)
		}
		desc, err := m.Alloc(int64(nkeys))
		if err != nil {
			return nil, err
		}
		for i, t := range keyTypes {
			m.Mem[desc+int64(i)] = t
		}
		recs, err := m.Alloc(int64(sorterRecords * nkeys))
		if err != nil {
			return nil, err
		}
		return &sorterState{recs: recs, desc: desc, n: sorterRecords,
			nkeys: int64(nkeys), rng: 0x9E3779B97F4A7C15, keyTypes: keyTypes}, nil
	}
}

func (st *sorterState) next() uint64 {
	st.rng ^= st.rng << 13
	st.rng ^= st.rng >> 7
	st.rng ^= st.rng << 17
	return st.rng
}

// fill randomizes record contents; early keys get low cardinality so later
// keys decide some comparisons.
func (st *sorterState) fill(m *vm.Machine) {
	for r := int64(0); r < st.n; r++ {
		for k := int64(0); k < st.nkeys; k++ {
			v := int64(st.next())
			switch {
			case k == 0:
				v = v % 4 // low cardinality: force deeper comparisons
			case st.keyTypes[k] == 3:
				v = v & 1
			default:
				v = v % 1000
			}
			m.Mem[st.recs+r*st.nkeys+k] = v
		}
	}
}

// gold compares two records host-side.
func (st *sorterState) gold(m *vm.Machine, a, b int64) int {
	for k := int64(0); k < st.nkeys; k++ {
		av := m.Mem[st.recs+a*st.nkeys+k]
		bv := m.Mem[st.recs+b*st.nkeys+k]
		var c int
		switch st.keyTypes[k] {
		case 0:
			c = cmpI(av, bv)
		case 1:
			c = -cmpI(av, bv)
		case 2:
			c = cmpU(uint64(av), uint64(bv))
		case 3:
			c = cmpI(b2(av), b2(bv))
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

func cmpI(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
func cmpU(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
func b2(v int64) int64 {
	if v != 0 {
		return 1
	}
	return 0
}

func useSorter(m *vm.Machine, state any, i int) error {
	st := state.(*sorterState)
	st.fill(m)
	if _, err := m.Call("sortRecords", st.recs, st.nkeys, st.n, st.desc, st.nkeys); err != nil {
		return err
	}
	for r := int64(0); r+1 < st.n; r++ {
		if st.gold(m, r, r+1) > 0 {
			return fmt.Errorf("records %d and %d out of order", r, r+1)
		}
	}
	return nil
}

func sorterBenchmark(nkeys, uses int, config string) *benchmark {
	return &benchmark{
		name:        "record sorter",
		config:      config,
		unit:        "records",
		source:      SorterSource,
		uses:        uses,
		unitsPerUse: sorterRecords,
		build:       buildSorter(nkeys),
		use:         useSorter,
	}
}

// Sorter4 measures Table 2 row 6 (4 keys of different types).
func Sorter4(cfg Config) (*Measurement, error) {
	return measure(sorterBenchmark(4, 6, "4 keys, each of a different type"), cfg)
}

// Sorter32 measures Table 2 row 7 (32 keys).
func Sorter32(cfg Config) (*Measurement, error) {
	return measure(sorterBenchmark(32, 4, "32 keys, each of a different type"), cfg)
}
