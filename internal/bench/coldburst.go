package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// coldSrc is the cold-burst kernel: a keyed region whose specialization is
// deliberately stitch-heavy (a 32-iteration unrolled loop, so every key
// costs ~hundreds of stitched instructions). Inline, a cold key's caller
// pays that whole stitch on its own call; async, the caller runs the
// generic fallback tier and the stitch happens on a background worker.
const coldSrc = `
int burst(int k, int x) {
    int acc;
    int i;
    acc = 0;
    dynamicRegion key(k) () {
        unrolled for (i = 0; i < 32; i++) {
            acc = acc + x * (k + i);
        }
    }
    return acc + k;
}`

// coldExpect is the kernel's closed form: sum over i<32 of x*(k+i), plus k.
func coldExpect(k, x int64) int64 { return x*(32*k+496) + k }

// Cold-burst defaults: enough distinct cold keys that tail quantiles are
// meaningful, and a warm phase long enough to time steady-state dispatch.
const (
	coldBurstKeys  = 400
	coldBurstWarm  = 20000
	coldBurstRetry = 100 // attempts to promote the warm key before timing
)

// ColdBurstResult compares cold-key call latency (wall clock, host side)
// between inline and asynchronous stitching. The burst calls each of Keys
// distinct cold keys exactly once on a single machine and records each
// call's latency; the warm phase then times steady-state dispatch of one
// promoted key. The paper's cycle-model tables are mode-invariant
// (TestTable3AsyncGolden); this is the host-latency result the tiered
// runtime exists for — taking the stitch off the caller's critical path.
type ColdBurstResult struct {
	Keys int `json:"keys"`

	InlineP50 time.Duration `json:"inline_p50_ns"`
	InlineP99 time.Duration `json:"inline_p99_ns"`
	AsyncP50  time.Duration `json:"async_p50_ns"`
	AsyncP99  time.Duration `json:"async_p99_ns"`
	// P99Ratio is InlineP99 / AsyncP99 — how much shorter the cold tail
	// gets when stitching moves off the caller's path.
	P99Ratio float64 `json:"p99_ratio"`

	// Warm steady-state dispatch cost (ns per call of one promoted key) —
	// the async path must not tax the warm path.
	InlineWarmNs float64 `json:"inline_warm_ns_per_call"`
	AsyncWarmNs  float64 `json:"async_warm_ns_per_call"`

	// Async-pool accounting for the burst.
	AsyncStitches uint64 `json:"async_stitches"`
	FallbackRuns  uint64 `json:"fallback_runs"`
	QueueRejects  uint64 `json:"queue_rejects"`
	PromoteP99Ns  uint64 `json:"promote_p99_ns"`
}

// quantile returns the q-quantile of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// coldRun drives the burst+warm workload in one mode and reports the
// sorted cold latencies, the warm per-call cost, and the cache stats.
func coldRun(keys, warmIters int, async bool) ([]time.Duration, float64, rtr.CacheStats, error) {
	var zero rtr.CacheStats
	c, err := core.Compile(coldSrc, core.Config{
		Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: async},
	})
	if err != nil {
		return nil, 0, zero, fmt.Errorf("coldburst compile: %w", err)
	}
	defer c.Runtime.Close()
	m := c.NewMachine(0)

	lats := make([]time.Duration, 0, keys)
	for k := int64(1); k <= int64(keys); k++ {
		t0 := time.Now()
		got, err := m.Call("burst", k, 3)
		lat := time.Since(t0)
		if err != nil {
			return nil, 0, zero, fmt.Errorf("coldburst key %d: %w", k, err)
		}
		if got != coldExpect(k, 3) {
			return nil, 0, zero, fmt.Errorf("burst(%d,3) = %d, want %d", k, got, coldExpect(k, 3))
		}
		lats = append(lats, lat)
	}

	// Warm phase: promote key 1, then time steady-state dispatch. Under
	// async the burst may have rejected key 1's stitch (the queue was cold-
	// flooded), so re-drive it until the published segment is adopted.
	c.Runtime.WaitIdle()
	for i := 0; i < coldBurstRetry && async && c.Runtime.Peek(0, 1) == nil; i++ {
		if _, err := m.Call("burst", 1, 3); err != nil {
			return nil, 0, zero, err
		}
		c.Runtime.WaitIdle()
	}
	if _, err := m.Call("burst", 1, 3); err != nil { // adopt into the private cache
		return nil, 0, zero, err
	}
	t0 := time.Now()
	for i := 0; i < warmIters; i++ {
		if _, err := m.Call("burst", 1, 3); err != nil {
			return nil, 0, zero, err
		}
	}
	warmNs := float64(time.Since(t0).Nanoseconds()) / float64(warmIters)

	stats := c.Runtime.CacheStats() // after quiesce, so pool work is visible
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, warmNs, stats, nil
}

// ColdBurst runs the cold-burst workload in both modes. Zero arguments
// select the standard configuration (400 cold keys, 20000 warm calls).
func ColdBurst(keys, warmIters int) (*ColdBurstResult, error) {
	if keys < 1 {
		keys = coldBurstKeys
	}
	if warmIters < 1 {
		warmIters = coldBurstWarm
	}
	inline, inlineWarm, _, err := coldRun(keys, warmIters, false)
	if err != nil {
		return nil, err
	}
	async, asyncWarm, stats, err := coldRun(keys, warmIters, true)
	if err != nil {
		return nil, err
	}
	r := &ColdBurstResult{
		Keys:          keys,
		InlineP50:     quantile(inline, 0.50),
		InlineP99:     quantile(inline, 0.99),
		AsyncP50:      quantile(async, 0.50),
		AsyncP99:      quantile(async, 0.99),
		InlineWarmNs:  inlineWarm,
		AsyncWarmNs:   asyncWarm,
		AsyncStitches: stats.AsyncStitches,
		FallbackRuns:  stats.FallbackRuns,
		QueueRejects:  stats.QueueRejects,
		PromoteP99Ns:  stats.PromoteQuantile(0.99),
	}
	if r.AsyncP99 > 0 {
		r.P99Ratio = float64(r.InlineP99) / float64(r.AsyncP99)
	}
	return r, nil
}

// PrintColdBurst renders the cold-burst report.
func PrintColdBurst(w io.Writer, r *ColdBurstResult) {
	fmt.Fprintf(w, "%d cold keys, one call each (stitch-heavy keyed kernel, wall clock)\n", r.Keys)
	fmt.Fprintf(w, "  %-26s p50 %8v   p99 %8v\n", "inline stitch", r.InlineP50, r.InlineP99)
	fmt.Fprintf(w, "  %-26s p50 %8v   p99 %8v\n", "async (fallback tier)", r.AsyncP50, r.AsyncP99)
	fmt.Fprintf(w, "  %-26s %8.1fx\n", "cold p99 improvement", r.P99Ratio)
	fmt.Fprintf(w, "  %-26s inline %6.0f ns/call   async %6.0f ns/call\n",
		"warm dispatch", r.InlineWarmNs, r.AsyncWarmNs)
	fmt.Fprintf(w, "  %-26s %d stitched, %d fallback runs, %d queue rejects, promote p99 %dns\n",
		"async pool", r.AsyncStitches, r.FallbackRuns, r.QueueRejects, r.PromoteP99Ns)
}
