package bench

import "testing"

// TestCacheChurnBounded runs a scaled-down churn workload and checks the
// acceptance properties of the bounded cache: the cap holds at peak, the
// Zipf head stays hot despite tail churn, and the tail actually churns.
func TestCacheChurnBounded(t *testing.T) {
	const cap = 64
	r, err := CacheChurn(2, 4000, 1024, cap)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakEntries > cap {
		t.Errorf("peak entries %d exceed cap %d", r.PeakEntries, cap)
	}
	if r.EntriesResident > cap {
		t.Errorf("resident entries %d exceed cap %d", r.EntriesResident, cap)
	}
	if r.Evictions == 0 {
		t.Error("no evictions despite key space 16x the cap")
	}
	if r.HotHitRate < 0.9 {
		t.Errorf("hot-set hit rate %.3f < 0.90: eviction is thrashing the head", r.HotHitRate)
	}
	if r.Stitches <= uint64(cap) {
		t.Errorf("stitches %d: the tail should churn well past the cap", r.Stitches)
	}
	if len(r.Churn) == 0 || r.Churn[0].Stitches != r.Stitches {
		t.Errorf("per-region churn not collected: %+v", r.Churn)
	}
}

// BenchmarkCacheChurn is the benchstat target behind `make bench-cache`:
// one op is the standard churn workload (4 machines x 25000 Zipf-keyed
// uses against a 256-entry cache), reported with uses/sec and the hot-set
// hit rate as extra metrics.
func BenchmarkCacheChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := CacheChurn(0, 0, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.UsesPerSec, "uses/sec")
		b.ReportMetric(100*r.HotHitRate, "hot-hit-%")
	}
}
