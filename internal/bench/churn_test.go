package bench

import "testing"

// TestCacheChurnBounded runs a scaled-down churn workload in both stitch
// modes and checks the acceptance properties of the bounded cache: the cap
// holds at peak, the Zipf head stays hot despite tail churn, and the tail
// actually churns. The async variant additionally requires that stitching
// really moved to the background pool (machines never compile) and that
// cold calls ran on the fallback tier.
func TestCacheChurnBounded(t *testing.T) {
	const cap = 64
	for _, async := range []bool{false, true} {
		name := "inline"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			r, err := CacheChurnMode(2, 4000, 1024, cap, async)
			if err != nil {
				t.Fatal(err)
			}
			if r.PeakEntries > cap {
				t.Errorf("peak entries %d exceed cap %d", r.PeakEntries, cap)
			}
			if r.EntriesResident > cap {
				t.Errorf("resident entries %d exceed cap %d", r.EntriesResident, cap)
			}
			if r.Evictions == 0 {
				t.Error("no evictions despite key space 16x the cap")
			}
			// Eviction quality. Inline, a hot key evicted from the shared
			// cache is re-stitched on its very next miss, so the head stays
			// ~97% hot. Async, the same re-stitch queues behind the tail's
			// cold flood and the key serves from the fallback tier until a
			// worker gets to it — the head dips while promotion is pending,
			// so the floor is looser; what matters is that it stays far
			// above a thrashing cache (which would sit near zero).
			minRate := 0.9
			if async {
				minRate = 0.5
			}
			if r.HotHitRate < minRate {
				t.Errorf("hot-set hit rate %.3f < %.2f: eviction is thrashing the head",
					r.HotHitRate, minRate)
			}
			if r.Stitches <= uint64(cap) {
				t.Errorf("stitches %d: the tail should churn well past the cap", r.Stitches)
			}
			if len(r.Churn) == 0 || r.Churn[0].Stitches != r.Stitches {
				t.Errorf("per-region churn not collected: %+v", r.Churn)
			}
			if async {
				if r.AsyncStitches != r.Stitches {
					t.Errorf("async stitches %d != stitches %d: something compiled inline",
						r.AsyncStitches, r.Stitches)
				}
				if r.FallbackRuns == 0 {
					t.Error("no fallback-tier executions in async mode")
				}
			} else if r.AsyncStitches != 0 || r.FallbackRuns != 0 {
				t.Errorf("async counters moved in inline mode: %+v", r)
			}
		})
	}
}

// BenchmarkCacheChurn is the benchstat target behind `make bench-cache`:
// one op is the standard churn workload (4 machines x 25000 Zipf-keyed
// uses against a 256-entry cache), reported with uses/sec and the hot-set
// hit rate as extra metrics.
func BenchmarkCacheChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := CacheChurn(0, 0, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.UsesPerSec, "uses/sec")
		b.ReportMetric(100*r.HotHitRate, "hot-hit-%")
	}
}

// BenchmarkCacheChurnAsync is the same workload with background stitching:
// compare uses/sec against BenchmarkCacheChurn to see what taking the
// stitch off the callers' critical path buys under churn.
func BenchmarkCacheChurnAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := CacheChurnMode(0, 0, 0, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.UsesPerSec, "uses/sec")
		b.ReportMetric(100*r.HotHitRate, "hot-hit-%")
	}
}
