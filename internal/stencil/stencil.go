// Package stencil precompiles a region's machine-code templates into their
// copy-and-patch form (tmpl.Stencil): flat block bodies with sorted patch
// tables, per-edge loop-transition plans, and integer-coded memoization
// chains. It runs once per compilation, as the `stencil` pipeline pass, so
// every stitch of the region afterwards is a memcpy plus a patch loop
// instead of a walk over the directive structure.
//
// The builder is strict: any region whose template structure it cannot
// prove well-formed (out-of-range hole offsets, loops entered away from
// their head block, cyclic loop parent chains, terminator/successor
// mismatches) is left without a stencil and falls back to the stitcher's
// interpretive path, which reports the matching error at stitch time.
package stencil

import (
	"fmt"
	"sort"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Precompile builds stencils for every region that has template blocks
// (static placeholder regions have none) and returns how many regions were
// lowered. Regions the builder rejects are skipped, not failed: the
// stitcher's interpretive fallback preserves the pre-stencil behaviour.
func Precompile(regions []*tmpl.Region) int {
	n := 0
	for _, r := range regions {
		if r == nil || len(r.Blocks) == 0 {
			continue
		}
		s, err := Build(r)
		if err != nil {
			continue
		}
		r.Stencil = s
		n++
	}
	return n
}

// Build lowers one region into its stencil form without attaching it.
func Build(r *tmpl.Region) (*tmpl.Stencil, error) {
	b := &builder{r: r}
	if err := b.index(); err != nil {
		return nil, err
	}
	if r.Entry < 0 || r.Entry >= len(r.Blocks) {
		return nil, fmt.Errorf("stencil: region %s entry block %d out of range", r.Name, r.Entry)
	}
	s := &tmpl.Stencil{
		Blocks:       make([]tmpl.StencilBlock, len(r.Blocks)),
		Entry:        int32(r.Entry),
		NumLoopSlots: b.nSlots,
	}
	for bi := range r.Blocks {
		if err := b.block(bi, &s.Blocks[bi]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

type builder struct {
	r        *tmpl.Region
	loopByID []*tmpl.Loop
	nSlots   int
	chains   [][]int // per block: enclosing-loop ids, innermost first
}

// index validates the loop table and precomputes per-block loop chains.
func (b *builder) index() error {
	r := b.r
	maxID := -1
	for _, l := range r.Loops {
		if l.ID < 0 {
			return fmt.Errorf("stencil: region %s has negative loop id %d", r.Name, l.ID)
		}
		if l.ID > maxID {
			maxID = l.ID
		}
	}
	b.nSlots = maxID + 1
	b.loopByID = make([]*tmpl.Loop, b.nSlots)
	for _, l := range r.Loops {
		if b.loopByID[l.ID] != nil {
			return fmt.Errorf("stencil: region %s has duplicate loop id %d", r.Name, l.ID)
		}
		if l.HeadBlock < 0 || l.HeadBlock >= len(r.Blocks) {
			return fmt.Errorf("stencil: loop %d head block %d out of range", l.ID, l.HeadBlock)
		}
		b.loopByID[l.ID] = l
	}
	b.chains = make([][]int, len(r.Blocks))
	for bi, bk := range r.Blocks {
		var ids []int
		id := bk.LoopID
		for id >= 0 {
			if id >= b.nSlots || b.loopByID[id] == nil {
				return fmt.Errorf("stencil: block %d references unknown loop %d", bi, id)
			}
			if len(ids) > len(r.Loops) {
				return fmt.Errorf("stencil: cyclic loop parent chain at block %d", bi)
			}
			ids = append(ids, id)
			id = b.loopByID[id].ParentID
		}
		b.chains[bi] = ids
	}
	return nil
}

// block lowers one template block: body, patch table, memo chain,
// terminator plan.
func (b *builder) block(bi int, out *tmpl.StencilBlock) error {
	bk := b.r.Blocks[bi]
	out.Body = bk.Code

	// Patch table: sorted by Pc; on duplicate offsets the last hole wins,
	// matching the interpretive path's per-pc hole map.
	if len(bk.Holes) > 0 {
		ps := make([]tmpl.Patch, 0, len(bk.Holes))
		for _, h := range bk.Holes {
			if h.Pc < 0 || h.Pc >= len(bk.Code) {
				return fmt.Errorf("stencil: block %d hole offset %d out of range", bi, h.Pc)
			}
			in := bk.Code[h.Pc]
			p := tmpl.Patch{
				Pc:   int32(h.Pc),
				Loop: int32(h.Slot.LoopID),
				Slot: int32(h.Slot.Slot),
				Inst: in,
			}
			switch in.Op {
			case vm.LDC:
				p.Kind = tmpl.PatchLDC
			case vm.LI:
				p.Kind = tmpl.PatchLI
			default:
				p.Kind = tmpl.PatchALU
				p.RegOp = vm.ImmToRegForm(in.Op)
			}
			ps = append(ps, p)
		}
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].Pc < ps[j].Pc })
		w := 0
		for i := range ps {
			if i+1 < len(ps) && ps[i+1].Pc == ps[i].Pc {
				continue // stable sort kept declaration order: keep the last
			}
			ps[w] = ps[i]
			w++
		}
		out.Patches = ps[:w]
	}

	// Memo chain: enclosing loop ids, ascending.
	if chain := b.chains[bi]; len(chain) > 0 {
		ids := make([]int, len(chain))
		copy(ids, chain)
		sort.Ints(ids)
		out.Chain = make([]int32, len(ids))
		for i, id := range ids {
			out.Chain[i] = int32(id)
		}
	}

	return b.term(bi, bk, out)
}

// succCount returns how many successor edges a terminator must carry.
func succCount(t *tmpl.Term) int {
	switch t.Kind {
	case tmpl.TermRet:
		return 0
	case tmpl.TermJump:
		return 1
	case tmpl.TermBr:
		return 2
	case tmpl.TermSwitch:
		return len(t.Cases) + 1
	}
	return -1
}

func (b *builder) term(bi int, bk *tmpl.Block, out *tmpl.StencilBlock) error {
	t := &bk.Term
	n := succCount(t)
	if n < 0 {
		return fmt.Errorf("stencil: block %d has unknown terminator kind %d", bi, t.Kind)
	}
	if len(t.Succs) < n {
		return fmt.Errorf("stencil: block %d terminator has %d successors, needs %d", bi, len(t.Succs), n)
	}
	st := tmpl.StencilTerm{Kind: t.Kind, CondReg: t.CondReg, Cases: t.Cases}
	if t.ConstSlot != nil {
		st.HasConst = true
		st.ConstLoop = int32(t.ConstSlot.LoopID)
		st.ConstSlot = int32(t.ConstSlot.Slot)
	} else if t.Kind == tmpl.TermSwitch {
		return fmt.Errorf("stencil: block %d switch without a constant slot", bi)
	}
	if n > 0 {
		st.Edges = make([]tmpl.EdgePlan, n)
		for i := 0; i < n; i++ {
			e, err := b.edge(bi, t.Succs[i])
			if err != nil {
				return err
			}
			st.Edges[i] = e
		}
	}
	out.Term = st
	return nil
}

// edge precomputes the loop-record transition for following one successor
// edge: which loops are entered (outermost-first, reading header slots)
// and which active records advance along their next link (back edges).
// These are pure functions of the (from, to) block pair, which is what
// lets the stitcher skip chain derivation entirely.
func (b *builder) edge(from int, e tmpl.Edge) (tmpl.EdgePlan, error) {
	if e.Block < 0 {
		return tmpl.EdgePlan{Block: -1, ExitPC: int32(e.ExitPC)}, nil
	}
	if e.Block >= len(b.r.Blocks) {
		return tmpl.EdgePlan{}, fmt.Errorf("stencil: block %d edge to out-of-range block %d", from, e.Block)
	}
	p := tmpl.EdgePlan{Block: int32(e.Block)}
	fromChain := b.chains[from]
	toChain := b.chains[e.Block]
	// Entering loops: collected in chain (innermost-first) order, then
	// reversed so parent records resolve before their children's header
	// slots are read — the interpretive path's exact order.
	var entering []int
	for _, id := range toChain {
		if !chainHas(fromChain, id) {
			entering = append(entering, id)
		}
	}
	for i := len(entering) - 1; i >= 0; i-- {
		l := b.loopByID[entering[i]]
		if l.HeadBlock != e.Block {
			return tmpl.EdgePlan{}, fmt.Errorf("stencil: loop %d entered at non-head block %d", l.ID, e.Block)
		}
		p.Enter = append(p.Enter, tmpl.EnterStep{
			Loop:    int32(l.ID),
			HdrLoop: int32(l.HeaderSlot.LoopID),
			HdrSlot: int32(l.HeaderSlot.Slot),
		})
	}
	// Back edges: loops whose head is the target and that were already
	// active advance to their next record.
	for _, id := range toChain {
		l := b.loopByID[id]
		if l.HeadBlock == e.Block && chainHas(fromChain, id) {
			p.Advance = append(p.Advance, tmpl.AdvanceStep{
				Loop:     int32(id),
				NextSlot: int32(l.NextSlot),
			})
		}
	}
	return p, nil
}

func chainHas(chain []int, id int) bool {
	for _, c := range chain {
		if c == id {
			return true
		}
	}
	return false
}
