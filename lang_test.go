package dyncc

import (
	"bytes"
	"strings"
	"testing"
)

// Every program here is run both statically and dynamically compiled and
// the results must agree (and match the expected value).
func bothWays(t *testing.T, src, fn string, want int64, args ...int64) {
	t.Helper()
	for _, cfg := range []Config{
		{Dynamic: false, Optimize: true},
		{Dynamic: true, Optimize: true},
		{Dynamic: true, Optimize: false},
	} {
		p, err := Compile(src, cfg)
		if err != nil {
			t.Fatalf("compile %+v: %v", cfg, err)
		}
		m := p.NewMachine(0)
		got, err := m.Call(fn, args...)
		if err != nil {
			t.Fatalf("run %+v: %v", cfg, err)
		}
		if got != want {
			t.Errorf("%+v: %s = %d, want %d", cfg, fn, got, want)
		}
	}
}

func TestFloatRegion(t *testing.T) {
	src := `
float fma(float c, float x) {
    float r;
    dynamicRegion (c) {
        r = c * x + c;
    }
    return r;
}`
	for _, cfg := range []Config{{Dynamic: false, Optimize: true}, {Dynamic: true, Optimize: true}} {
		p, err := Compile(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := p.NewMachine(0)
		got, err := m.CallF("fma", 2.5, 4.0)
		if err != nil {
			t.Fatal(err)
		}
		if got != 2.5*4.0+2.5 {
			t.Errorf("%+v: fma = %g", cfg, got)
		}
	}
}

func TestMultiKeyRegion(t *testing.T) {
	src := `
int f(int a, int b, int x) {
    int r;
    dynamicRegion key(a, b) () {
        r = a * x + b;
    }
    return r;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	for _, c := range [][3]int64{{2, 3, 10}, {5, 1, 10}, {2, 3, 20}, {5, 1, 20}} {
		got, err := m.Call("f", c[0], c[1], c[2])
		if err != nil {
			t.Fatal(err)
		}
		if want := c[0]*c[2] + c[1]; got != want {
			t.Errorf("f%v = %d, want %d", c, got, want)
		}
	}
	// Two distinct (a,b) pairs -> two compiled versions.
	if p.c.Runtime.Stats(0).InstsStitched == 0 {
		t.Error("nothing stitched")
	}
	mch := m
	if mch.Region(0).Compiles != 2 {
		t.Errorf("compiles: %d, want 2", mch.Region(0).Compiles)
	}
}

func TestReturnInsideUnrolledLoop(t *testing.T) {
	src := `
int find(int *a, int n, int needle) {
    dynamicRegion (a, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            if (a dynamic[i] == needle) return i;
        }
        return -1;
    }
    return -2;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	addr, _ := m.Alloc(5)
	for i, v := range []int64{10, 20, 30, 40, 50} {
		m.Mem()[addr+int64(i)] = v
	}
	for needle, want := range map[int64]int64{30: 2, 10: 0, 50: 4, 99: -1} {
		got, err := m.Call("find", addr, 5, needle)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("find(%d) = %d, want %d", needle, got, want)
		}
	}
}

func TestRegionCalledRecursively(t *testing.T) {
	src := `
int step(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = x * c + 1;
    }
    return r;
}
int iter(int c, int x, int n) {
    if (n == 0) return x;
    return iter(c, step(c, x), n - 1);
}`
	bothWays(t, src, "iter", 3*(3*(3*1+1)+1)+1, 3, 1, 3)
}

func TestDoWhileAndTernaryInRegion(t *testing.T) {
	src := `
int f(int c, int x) {
    int r = 0;
    dynamicRegion (c) {
        int i = 0;
        do {
            r += (c > 5 ? x : -x);
            i++;
        } while (i < 3);
    }
    return r;
}`
	bothWays(t, src, "f", 3*7, 9, 7)
	bothWays(t, src, "f", -3*7, 2, 7)
}

func TestGotoWithinRegion(t *testing.T) {
	src := `
int f(int c, int x) {
    int r = 0;
    dynamicRegion (c) {
        if (c > 0) goto pos;
        r = -x;
        goto done;
    pos:
        r = x;
    done:
        r = r + c;
    }
    return r;
}`
	bothWays(t, src, "f", 10+4, 4, 10)
	bothWays(t, src, "f", -10-4, -4, 10)
}

func TestPrintBuiltinsInRegion(t *testing.T) {
	src := `
int f(int c) {
    dynamicRegion (c) {
        print_str("value:");
        print_int(c * 2);
    }
    return 0;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	var buf bytes.Buffer
	m.SetOutput(&buf)
	if _, err := m.Call("f", 21); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "value:") || !strings.Contains(got, "42") {
		t.Errorf("output: %q", got)
	}
}

// Failure injection: traps inside dynamically compiled code surface as
// errors, in both compilation modes.
func TestTrapInsideRegion(t *testing.T) {
	src := `
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = x / (x - x);  /* divide by zero at run time */
    }
    return r;
}`
	for _, cfg := range []Config{{Dynamic: false, Optimize: false}, {Dynamic: true, Optimize: false}} {
		p, err := Compile(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := p.NewMachine(0)
		if _, err := m.Call("f", 1, 5); err == nil {
			t.Errorf("%+v: expected a divide-by-zero trap", cfg)
		}
	}
}

// Failure injection: wild loads inside a region trap instead of corrupting
// the machine.
func TestWildLoadTraps(t *testing.T) {
	src := `
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = dynamic* (int*)x;
    }
    return r;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	if _, err := m.Call("f", 1, 1<<40); err == nil {
		t.Error("expected out-of-bounds trap")
	}
}

// A region executed zero times (function never called) must not stitch.
func TestLazyCompilation(t *testing.T) {
	src := `
int unused(int c) {
    int r;
    dynamicRegion (c) { r = c * 2; }
    return r;
}
int main2() { return 7; }`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	if _, err := m.Call("main2"); err != nil {
		t.Fatal(err)
	}
	if m.Region(0).Compiles != 0 {
		t.Error("region compiled without being entered")
	}
	if _, err := m.Call("unused", 4); err != nil {
		t.Fatal(err)
	}
	if m.Region(0).Compiles != 1 {
		t.Error("region not compiled on first entry")
	}
}

// Dense and sparse switches in ordinary code (jump table vs compare chain).
func TestSwitchLoweringModes(t *testing.T) {
	src := `
int dense(int x) {
    switch (x) {
    case 0: return 100;
    case 1: return 101;
    case 2: return 102;
    case 3: return 103;
    case 4: return 104;
    default: return -1;
    }
}
int sparse(int x) {
    switch (x) {
    case 1: return 11;
    case 1000: return 12;
    case 100000: return 13;
    default: return -1;
    }
}`
	p := mustStatic(t, src)
	m := p.NewMachine(0)
	for x, want := range map[int64]int64{0: 100, 3: 103, 4: 104, 9: -1, -5: -1} {
		if got, _ := m.Call("dense", x); got != want {
			t.Errorf("dense(%d) = %d, want %d", x, got, want)
		}
	}
	for x, want := range map[int64]int64{1: 11, 1000: 12, 100000: 13, 7: -1} {
		if got, _ := m.Call("sparse", x); got != want {
			t.Errorf("sparse(%d) = %d, want %d", x, got, want)
		}
	}
}

// The cycle budget guard stops runaway programs.
func TestCycleBudget(t *testing.T) {
	p := mustStatic(t, `int spin() { for (;;) {} return 0; }`)
	m := p.NewMachine(0)
	m.m.MaxCycles = 100000
	if _, err := m.Call("spin"); err == nil {
		t.Error("expected cycle-budget abort")
	}
}
