package dyncc

import "testing"

// Additional MiniC semantics coverage, each checked in static, dynamic and
// unoptimized-dynamic modes via bothWays.

func TestMultiDimensionalArrays(t *testing.T) {
	bothWays(t, `
int f(int c, int x) {
    int m[3][4];
    int i, j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    int s = 0;
    dynamicRegion (c) {
        s = m[1][2] + m[2][3] * c + x;
    }
    return s;
}`, "f", 12+23*5+7, 5, 7)
}

func TestArraysOfStructs(t *testing.T) {
	bothWays(t, `
struct Pair { int a; int b; };
int f(int c, int x) {
    struct Pair ps[4];
    int i;
    for (i = 0; i < 4; i++) {
        ps[i].a = i;
        ps[i].b = i * x;
    }
    return ps[2].a + ps[3].b;
}`, "f", 2+3*9, 1, 9)
}

func TestPreIncrementAndCompound(t *testing.T) {
	bothWays(t, `
int f(int c, int x) {
    int a = x;
    ++a;
    a <<= 2;
    a |= 1;
    a -= c;
    --a;
    return a;
}`, "f", ((10+1)<<2|1)-3-1, 3, 10)
}

func TestCommaOperator(t *testing.T) {
	bothWays(t, `
int f(int c, int x) {
    int a = (x++, x + c);
    return a + x;
}`, "f", (10+1+3)+(10+1), 3, 10)
}

func TestFloatIntConversions(t *testing.T) {
	bothWays(t, `
int f(int c, int x) {
    float fx = (float)x / 4.0;
    int i = (int)(fx * 10.0);
    float g = (float)c + 0.5;
    return i + (int)g;
}`, "f", 17+3, 3, 7)
}

func TestUnsignedWrapAround(t *testing.T) {
	bothWays(t, `
unsigned f(unsigned c, unsigned x) {
    unsigned big = 0 - 1;      /* max unsigned */
    return (big / x) % 1000 + c;
}`, "f", int64(uint64(0xFFFFFFFFFFFFFFFF)/7%1000)+2, 2, 7)
}

func TestNestedCallsInRegion(t *testing.T) {
	bothWays(t, `
int helper(int a, int b) { return a * 2 + b; }
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = helper(helper(c, x), x);
    }
    return r;
}`, "f", ((3*2+9)*2 + 9), 3, 9)
}

func TestPureBuiltinsInRegion(t *testing.T) {
	bothWays(t, `
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        int hi = max(c, 100);   /* derived run-time constant */
        int lo = min(c, 100);
        r = hi * 1000 + lo + abs(0 - x);
    }
    return r;
}`, "f", 100*1000+42+17, 42, 17)
}

func TestBreakOutOfUnrolledLoop(t *testing.T) {
	src := `
int f(int *a, int n, int x) {
    int found = -1;
    dynamicRegion (a, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            if (a dynamic[i] == x) { found = i; break; }
        }
    }
    return found;
}`
	for _, cfg := range []Config{{Dynamic: false, Optimize: true}, {Dynamic: true, Optimize: true}} {
		p, err := Compile(src, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		m := p.NewMachine(0)
		addr, _ := m.Alloc(4)
		for i, v := range []int64{5, 6, 7, 8} {
			m.Mem()[addr+int64(i)] = v
		}
		for needle, want := range map[int64]int64{7: 2, 5: 0, 99: -1} {
			got, err := m.Call("f", addr, 4, needle)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%+v: f(%d) = %d, want %d", cfg, needle, got, want)
			}
		}
	}
}

func TestContinueInUnrolledLoop(t *testing.T) {
	src := `
int f(int *a, int n, int x) {
    int s = 0;
    dynamicRegion (a, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            if (a[i] < 0) continue;   /* constant branch: folded at stitch */
            s = s + a dynamic[i] * x;
        }
    }
    return s;
}`
	for _, cfg := range []Config{{Dynamic: false, Optimize: true}, {Dynamic: true, Optimize: true}} {
		p, err := Compile(src, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		m := p.NewMachine(0)
		addr, _ := m.Alloc(5)
		vals := []int64{3, -1, 4, -2, 5}
		for i, v := range vals {
			m.Mem()[addr+int64(i)] = v
		}
		got, err := m.Call("f", addr, 5, 10)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64((3 + 4 + 5) * 10); got != want {
			t.Errorf("%+v: got %d want %d", cfg, got, want)
		}
	}
}

func TestGlobalsAcrossRegionInvocations(t *testing.T) {
	src := `
int hits = 0;
int f(int c, int x) {
    dynamicRegion (c) {
        hits = hits + 1;       /* global mutated inside region */
        return hits * c + x;
    }
    return -1;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	for i := int64(1); i <= 5; i++ {
		got, err := m.Call("f", 2, 100)
		if err != nil {
			t.Fatal(err)
		}
		if want := i*2 + 100; got != want {
			t.Fatalf("call %d: got %d want %d", i, got, want)
		}
	}
}

func TestStringInterningDedupe(t *testing.T) {
	src := `
int f() {
    print_str("same");
    print_str("same");
    print_str("different");
    return 0;
}`
	p := mustStatic(t, src)
	// The two identical literals share one global.
	count := 0
	for _, g := range p.c.Module.Globals {
		if len(g.Name) > 5 && g.Name[:5] == ".str." {
			count++
		}
	}
	if count != 2 {
		t.Errorf("string globals: %d, want 2", count)
	}
}

// The region-exit value flows out through registers even when the region
// ends in complex control flow.
func TestMultiExitRegion(t *testing.T) {
	bothWays(t, `
int f(int c, int x) {
    int r = 0;
    dynamicRegion (c) {
        if (c > 10) {
            if (x > 0) return x;
            r = c;
        } else {
            r = c + x;
        }
    }
    return r * 2;
}`, "f", 7, 20, 7) // c>10, x>0: return x directly
	bothWays(t, `
int f(int c, int x) {
    int r = 0;
    dynamicRegion (c) {
        if (c > 10) {
            if (x > 0) return x;
            r = c;
        } else {
            r = c + x;
        }
    }
    return r * 2;
}`, "f", (3+9)*2, 3, 9) // c<=10: r=c+x, doubled outside
}
