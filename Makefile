GO ?= go

.PHONY: all check race bench table2 clean

all: check

# Tier 1: everything builds and the full suite passes.
check:
	$(GO) build ./...
	$(GO) test ./...

# Tier 2: static analysis plus the race-enabled suite (exercises the
# concurrent stitch cache under the race detector).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Machine-readable benchmark results: Table 2 plus the parallel-machines
# sweep, written to BENCH_1.json.
bench:
	$(GO) run ./cmd/dynbench -parallel 8 -json BENCH_1.json

# Regenerate the paper's tables on stdout.
table2:
	$(GO) run ./cmd/dynbench

clean:
	rm -f BENCH_1.json
