GO ?= go

.PHONY: all check race bench bench-host bench-cache table2 clean

all: check

# Tier 1: everything builds, vet is clean, the full suite passes, and the
# cache/eviction machinery passes its package tests under the race
# detector (fast enough for every check run; `race` still covers the
# whole tree).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -timeout 120s ./internal/rtr

# Tier 2: static analysis plus the race-enabled suite (exercises the
# concurrent stitch cache under the race detector).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Machine-readable benchmark results: Table 2 plus the parallel-machines
# sweep, written to BENCH_1.json.
bench:
	$(GO) run ./cmd/dynbench -parallel 8 -json BENCH_1.json

# Host-side interpreter benchmarks (ns of host time per modeled guest
# instruction), 5 samples each for benchstat. BenchmarkHostPerfNoFuse is
# the fusion ablation.
bench-host:
	$(GO) test -run '^$$' -bench HostPerf -count=5 .

# Bounded-cache churn under a Zipf key stream: benchstat-ready samples
# (pipe into benchstat old.txt new.txt) plus the machine-readable report.
bench-cache:
	$(GO) test -run '^$$' -bench CacheChurn -count=5 ./internal/bench
	$(GO) run ./cmd/dynbench -cachechurn -json BENCH_3.json

# Regenerate the paper's tables on stdout.
table2:
	$(GO) run ./cmd/dynbench

clean:
	rm -f BENCH_1.json
