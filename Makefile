GO ?= go

.PHONY: all check check-passes race fuzz bench bench-host bench-cache bench-async bench-compile bench-stitch bench-serve bench-cold bench-auto bench-inline table2 clean

all: check

# Tier 1: everything builds, gofmt and vet are clean, the full suite
# passes (including the stencil ablation in the pass sweep), the
# cache/eviction/async-stitch machinery and the stencil/interpretive
# stitch differential pass under the race detector (fast enough for every
# check run; `race` still covers the whole tree), batch compilation gets a
# race-enabled Compile/CompileBatch stress run, a fixed-seed differential
# sweep smoke and a short race-enabled serving run, a race-enabled
# automatic-promotion sweep smoke (annotation-stripped programs promoting,
# guarding and deoptimizing against the reference), a race-enabled
# call-boundary sweep smoke (call-bearing programs, inlined vs ablated,
# against the never-inlining reference), the differential and inline
# fuzzers get short smoke runs over their seed corpora plus fresh inputs,
# and the
# suite runs once more with ir.Verify forced between all compiler passes
# (check-passes), and the persistent-store round trip (compile → persist →
# fresh runtime serves byte-identical code from the store) runs under the
# race detector alongside a short store differential sweep.
check:
	$(GO) build ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: these files need formatting:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -timeout 120s ./internal/rtr
	$(GO) test -race -short -timeout 120s -run 'TestStencil' ./internal/testgen
	$(GO) test -race -timeout 120s -run 'TestPersistentStoreRoundTrip' .
	$(GO) test -race -short -timeout 120s -run 'TestStoreFixedSeeds' ./internal/testgen
	$(GO) test -race -short -timeout 180s -run 'TestCompileBatch|TestCompileRaceBatchVsSerial' ./internal/core
	$(GO) test -short -timeout 120s -run 'TestBatchSweepFixedSeeds' ./internal/testgen
	$(GO) test -race -short -timeout 180s -run 'TestServeSmall' ./internal/bench
	$(GO) test -race -short -timeout 180s -run 'TestAutoFixedSeeds' ./internal/testgen
	$(GO) test -race -short -timeout 180s -run 'TestInlineFixedSeeds' ./internal/testgen
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime 10s ./internal/testgen
	$(GO) test -run '^$$' -fuzz FuzzInline -fuzztime 10s ./internal/testgen
	$(MAKE) check-passes

# Pipeline hardening: the whole suite with ir.Verify interposed after
# every pass (not just the module-mutating ones), so a pass that corrupts
# the IR is caught at the pass boundary, not three stages later.
check-passes:
	DYNCC_VERIFY_ALL=1 $(GO) test ./...

# Tier 2: static analysis plus the race-enabled suite (exercises the
# concurrent stitch cache under the race detector).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Machine-readable benchmark results: Table 2 plus the parallel-machines
# sweep, written to BENCH_1.json.
bench:
	$(GO) run ./cmd/dynbench -parallel 8 -json BENCH_1.json

# Host-side interpreter benchmarks (ns of host time per modeled guest
# instruction), 5 samples each for benchstat. BenchmarkHostPerfNoFuse is
# the fusion ablation.
bench-host:
	$(GO) test -run '^$$' -bench HostPerf -count=5 .

# Bounded-cache churn under a Zipf key stream: benchstat-ready samples
# (pipe into benchstat old.txt new.txt) plus the machine-readable report.
bench-cache:
	$(GO) test -run '^$$' -bench CacheChurn -count=5 ./internal/bench
	$(GO) run ./cmd/dynbench -cachechurn -json BENCH_3.json

# Longer differential-fuzz session against the unoptimized-IR reference
# interpreter (check already runs a 10s smoke).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime 5m ./internal/testgen

# Cold-burst latency: inline vs background stitching, written to
# BENCH_4.json (the tiered-execution result).
bench-async:
	$(GO) run ./cmd/dynbench -asyncstitch -json BENCH_4.json

# Static compile latency per pipeline pass over the example corpus,
# written to BENCH_5.json.
bench-compile:
	$(GO) run ./cmd/dynbench -compiletime -json BENCH_5.json

# Stitcher emission paths: Go benchmarks (stencil vs interpretive, full and
# dry stitches) plus the machine-readable comparison in BENCH_6.json.
bench-stitch:
	$(GO) test -run '^$$' -bench Stitch -count=5 ./internal/stitcher
	$(GO) run ./cmd/dynbench -stitchperf -json BENCH_6.json

# Multi-tenant serving: the tenant fleet batch-compiled through
# CompileBatch (timed against serial compilation, byte-identity checked)
# and served under Zipf traffic, written to BENCH_7.json.
bench-serve:
	$(GO) run ./cmd/dynbench -serve -json BENCH_7.json

# Restart-to-warm against the persistent (level-0) code cache: populated
# vs empty on-disk store across working-set sizes, written to BENCH_8.json.
bench-cold:
	$(GO) run ./cmd/dynbench -coldstart -json BENCH_8.json

# Automatic region promotion: the annotation-stripped kernel under
# speculative promotion vs the static baseline vs the hand-annotated
# region, on a phased-key workload, written to BENCH_9.json.
bench-auto:
	$(GO) run ./cmd/dynbench -autoregion -json BENCH_9.json

# Demand-driven inlining: the helper-heavy keyed region inlined vs ablated
# (`-disable-pass inline`), plus the annotation-stripped subject promoting
# through its calls, written to BENCH_10.json.
bench-inline:
	$(GO) run ./cmd/dynbench -inline -json BENCH_10.json

# Regenerate the paper's tables on stdout.
table2:
	$(GO) run ./cmd/dynbench

clean:
	rm -f BENCH_1.json
