GO ?= go

.PHONY: all check race bench bench-host table2 clean

all: check

# Tier 1: everything builds, vet is clean and the full suite passes.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# Tier 2: static analysis plus the race-enabled suite (exercises the
# concurrent stitch cache under the race detector).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Machine-readable benchmark results: Table 2 plus the parallel-machines
# sweep, written to BENCH_1.json.
bench:
	$(GO) run ./cmd/dynbench -parallel 8 -json BENCH_1.json

# Host-side interpreter benchmarks (ns of host time per modeled guest
# instruction), 5 samples each for benchstat. BenchmarkHostPerfNoFuse is
# the fusion ablation.
bench-host:
	$(GO) test -run '^$$' -bench HostPerf -count=5 .

# Regenerate the paper's tables on stdout.
table2:
	$(GO) run ./cmd/dynbench

clean:
	rm -f BENCH_1.json
