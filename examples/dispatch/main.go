// Event dispatcher specialization (paper Table 2 row 5): the dispatch path
// of an extensible operating system kernel [BSP+95, CEA+96]. The installed
// guard table is a run-time constant: the dispatch loop is unrolled over
// the handlers, each guard's predicate-type switch is eliminated, and the
// guard arguments become immediates. Re-installing a different handler
// table recompiles the dispatcher (a keyed region would cache several).
package main

import (
	"fmt"
	"log"

	"dyncc"
)

const src = `
/* guard table entries: [predType, predArg, handlerWeight] */
int runHandler(int w, int payload) {
    return payload * 3 + w;
}

int dispatch(int *table, int n, int event, int payload) {
    int result = 0;
    dynamicRegion (table, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            int ptype = table[i*3];
            int parg = table[i*3+1];
            int w = table[i*3+2];
            int match = 0;
            switch (ptype) {
            case 0: match = event == parg; break;
            case 1: match = event != parg; break;
            case 2: match = (event & parg) != 0; break;
            case 3: match = event < parg; break;
            }
            if (match) {
                result = result + runHandler(w, payload);
            }
        }
    }
    return result;
}`

var guards = [][3]int64{
	{0, 17, 3}, {1, 4, 5}, {2, 0x10, 7}, {3, 100, 11},
	{0, 42, 13}, {2, 0x3, 17}, {3, 9, 19}, {1, 17, 23},
	{0, 5, 29}, {2, 0x80, 31},
}

func run(p *dyncc.Program, events int) (int64, float64) {
	m := p.NewMachine(0)
	table, err := m.Alloc(int64(len(guards)) * 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range guards {
		m.Mem()[table+int64(i*3)] = g[0]
		m.Mem()[table+int64(i*3)+1] = g[1]
		m.Mem()[table+int64(i*3)+2] = g[2]
	}
	var sum int64
	for i := 0; i < events; i++ {
		r, err := m.Call("dispatch", table, int64(len(guards)), int64(i*31)%257, int64(i%100))
		if err != nil {
			log.Fatal(err)
		}
		sum += r
	}
	st := m.Region(0)
	return sum, float64(st.ExecCycles) / float64(st.Invocations)
}

func main() {
	const events = 20000
	static, err := dyncc.CompileStatic(src)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := dyncc.CompileDynamic(src)
	if err != nil {
		log.Fatal(err)
	}
	ssum, sc := run(static, events)
	dsum, dc := run(dynamic, events)
	if ssum != dsum {
		log.Fatalf("static (%d) and dynamic (%d) disagree", ssum, dsum)
	}
	fmt.Printf("event dispatcher, %d guards (4 predicate types), %d dispatches\n",
		len(guards), events)
	fmt.Printf("  static:   %6.1f cycles/dispatch\n", sc)
	fmt.Printf("  dynamic:  %6.1f cycles/dispatch (%.2fx)\n", dc, sc/dc)
	ss := dynamic.StitchStats(0)
	fmt.Printf("\nstitcher resolved %d guard-type branches and unrolled %d iterations\n",
		ss.BranchesResolved, ss.LoopIterations)
}
