// Sparse matrix-vector multiply specialization (paper Table 2 rows 3-4).
// The matrix — both its sparsity pattern and its element values — is a
// run-time constant: the row and element loops are completely unrolled
// (nested unrolled loops, nested table records) and the column indices and
// values are burned into the stitched code. Only the x vector is read at
// run time.
package main

import (
	"fmt"
	"log"
	"math"

	"dyncc"
)

const src = `
/* CSR: rowstart[nrows+1], colidx[nnz], vals[nnz] (float) */
int spmv(int *rowstart, int *colidx, float *vals, float *x, float *y, int nrows) {
    dynamicRegion (rowstart, colidx, vals, nrows) {
        int r;
        unrolled for (r = 0; r < nrows; r++) {
            float sum = 0.0;
            int lo = rowstart[r];
            int hi = rowstart[r+1];
            int k;
            unrolled for (k = lo; k < hi; k++) {
                sum = sum + vals[k] * x dynamic[colidx[k]];
            }
            y dynamic[r] = sum;
        }
    }
    return 0;
}`

func main() {
	const (
		n      = 200
		perRow = 10
		mults  = 50
	)
	static, err := dyncc.CompileStatic(src)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := dyncc.CompileDynamic(src)
	if err != nil {
		log.Fatal(err)
	}

	run := func(p *dyncc.Program) (float64, float64) {
		m := p.NewMachine(0)
		mem := m.Mem()
		alloc := func(k int64) int64 {
			a, err := m.Alloc(k)
			if err != nil {
				log.Fatal(err)
			}
			return a
		}
		rowstart := alloc(n + 1)
		colidx := alloc(n * perRow)
		vals := alloc(n * perRow)
		x := alloc(n)
		y := alloc(n)

		rng := uint64(42)
		next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
		k := int64(0)
		for r := 0; r <= n; r++ {
			mem[rowstart+int64(r)] = k
			if r == n {
				break
			}
			for e := 0; e < perRow; e++ {
				mem[colidx+k] = int64(next() % n)
				mem[vals+k] = int64(math.Float64bits(float64(next()%200)/10 - 10))
				k++
			}
		}
		var checksum float64
		for it := 0; it < mults; it++ {
			for j := int64(0); j < n; j++ {
				mem[x+j] = int64(math.Float64bits(float64((int(j)+it)%17) - 8))
			}
			if _, err := m.Call("spmv", rowstart, colidx, vals, x, y, n); err != nil {
				log.Fatal(err)
			}
			checksum += math.Float64frombits(uint64(mem[y+int64(it%n)]))
		}
		st := m.Region(0)
		return float64(st.ExecCycles) / float64(st.Invocations), checksum
	}

	sc, scheck := run(static)
	dc, dcheck := run(dynamic)
	if math.Abs(scheck-dcheck) > 1e-6*(1+math.Abs(scheck)) {
		log.Fatalf("static (%g) and dynamic (%g) disagree", scheck, dcheck)
	}

	fmt.Printf("sparse matrix-vector multiply, %dx%d, %d elements/row, %d multiplications\n",
		n, n, perRow, mults)
	fmt.Printf("  static:   %9.0f cycles/multiplication\n", sc)
	fmt.Printf("  dynamic:  %9.0f cycles/multiplication (%.2fx)\n", dc, sc/dc)

	ss := dynamic.StitchStats(0)
	fmt.Printf("\nstitched %d instructions; %d loop iterations unrolled (rows + elements);\n"+
		"%d element values embedded via the large-constant table\n",
		ss.InstsStitched, ss.LoopIterations, ss.LargeConsts)
}
