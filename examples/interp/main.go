// Interpreter specialization (paper Table 2 row 1): a reverse-polish desk
// calculator. The RPN program is the run-time constant; dynamic compilation
// unrolls the fetch/dispatch loop over it and deletes the opcode switch,
// leaving straight-line arithmetic. With the section 5 register-actions
// extension, the stitcher additionally promotes the operand stack into
// registers, which is where the paper's 4.1x headline comes from.
package main

import (
	"fmt"
	"log"

	"dyncc"
)

const src = `
/* opcodes: 0 push-const(arg), 1 push-x, 2 push-y, 3 add, 4 sub, 5 mul, 6 neg */
int calcEval(int *prog, int n, int x, int y) {
    int stack[64];
    dynamicRegion (prog, n) {
        int sp = 0;
        int pc;
        unrolled for (pc = 0; pc < n; pc++) {
            int op = prog[pc*2];
            int arg = prog[pc*2+1];
            switch (op) {
            case 0: stack dynamic[sp] = arg; sp++; break;
            case 1: stack dynamic[sp] = x; sp++; break;
            case 2: stack dynamic[sp] = y; sp++; break;
            case 3: sp--; stack dynamic[sp-1] = stack dynamic[sp-1] + stack dynamic[sp]; break;
            case 4: sp--; stack dynamic[sp-1] = stack dynamic[sp-1] - stack dynamic[sp]; break;
            case 5: sp--; stack dynamic[sp-1] = stack dynamic[sp-1] * stack dynamic[sp]; break;
            case 6: stack dynamic[sp-1] = -stack dynamic[sp-1]; break;
            }
        }
        return stack dynamic[0];
    }
    return 0;
}`

// The paper's expression: x*y - 3y^2 - x^2 + (x+5)*y - x + x + y - 1.
var expr = [][2]int64{
	{1, 0}, {2, 0}, {5, 0},
	{0, 3}, {2, 0}, {5, 0}, {2, 0}, {5, 0}, {4, 0},
	{1, 0}, {1, 0}, {5, 0}, {4, 0},
	{1, 0}, {0, 5}, {3, 0}, {2, 0}, {5, 0}, {3, 0},
	{1, 0}, {4, 0},
	{1, 0}, {3, 0},
	{2, 0}, {3, 0},
	{0, 1}, {4, 0},
}

func measure(p *dyncc.Program, evals int) float64 {
	m := p.NewMachine(0)
	prog, err := m.Alloc(int64(len(expr)) * 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, cell := range expr {
		m.Mem()[prog+int64(i*2)] = cell[0]
		m.Mem()[prog+int64(i*2)+1] = cell[1]
	}
	for i := 0; i < evals; i++ {
		x, y := int64(i%53)-26, int64(i%37)-18
		got, err := m.Call("calcEval", prog, int64(len(expr)), x, y)
		if err != nil {
			log.Fatal(err)
		}
		want := x*y - 3*y*y - x*x + (x+5)*y - x + x + y - 1
		if got != want {
			log.Fatalf("eval(%d,%d) = %d, want %d", x, y, got, want)
		}
	}
	st := m.Region(0)
	return float64(st.ExecCycles) / float64(st.Invocations)
}

func main() {
	const evals = 5000
	static, err := dyncc.CompileStatic(src)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := dyncc.CompileDynamic(src)
	if err != nil {
		log.Fatal(err)
	}
	regact, err := dyncc.Compile(src, dyncc.Config{
		Dynamic: true, Optimize: true, RegisterActions: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	sc := measure(static, evals)
	dc := measure(dynamic, evals)
	rc := measure(regact, evals)

	fmt.Printf("RPN calculator, %d-op expression, %d interpretations\n", len(expr), evals)
	fmt.Printf("  static interpreter:      %7.1f cycles/interpretation\n", sc)
	fmt.Printf("  dynamically compiled:    %7.1f cycles/interpretation (%.2fx)\n", dc, sc/dc)
	fmt.Printf("  + register actions (§5): %7.1f cycles/interpretation (%.2fx)\n", rc, sc/rc)

	ra := regact.StitchStats(0)
	fmt.Printf("\nregister actions promoted %d loads and %d stores of the operand stack\n",
		ra.LoadsPromoted, ra.StoresPromoted)
}
