// Shader specialization (paper section 1 motivates "graphics renderers
// (where the scene or viewing parameters are constant)"; section 6.1
// discusses Guenter/Knoblock/Ruf's shader specializer). A pixel pipeline —
// a list of passes with parameters — is interpreted per pixel. The pipeline
// is the run-time constant: dynamic compilation unrolls the pass loop,
// deletes the per-pass dispatch, and specializes each pass against its
// parameter (fixed-point contrast multiplies strength-reduce per value).
package main

import (
	"fmt"
	"log"

	"dyncc"
)

const src = `
/* pass table: [op, arg] per pass.
   ops: 0 brightness(+arg), 1 contrast (v*arg)>>8 fixed point,
        2 invert, 3 threshold(arg), 4 clamp to 0..255 */
int shade(int *passes, int np, int *srcImg, int *dstImg, int n) {
    dynamicRegion (passes, np) {
        int i;
        for (i = 0; i < n; i++) {
            int v = srcImg dynamic[i];
            int p;
            unrolled for (p = 0; p < np; p++) {
                int op = passes[p*2];
                int a = passes[p*2+1];
                switch (op) {
                case 0: v = v + a; break;
                case 1: v = (v * a) >> 8; break;
                case 2: v = 255 - v; break;
                case 3: v = v > a ? 255 : 0; break;
                case 4:
                    if (v < 0) v = 0;
                    if (v > 255) v = 255;
                    break;
                }
            }
            dstImg dynamic[i] = v;
        }
    }
    return 0;
}`

// The pipeline: brighten, boost contrast 1.38x, clamp, invert, threshold.
var pipeline = [][2]int64{
	{0, 30},
	{1, 354}, // 354/256 = 1.38x
	{4, 0},
	{2, 0},
	{3, 96},
}

func goldShade(v int64) int64 {
	for _, p := range pipeline {
		switch p[0] {
		case 0:
			v += p[1]
		case 1:
			v = (v * p[1]) >> 8
		case 2:
			v = 255 - v
		case 3:
			if v > p[1] {
				v = 255
			} else {
				v = 0
			}
		case 4:
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
		}
	}
	return v
}

func run(p *dyncc.Program, frames, n int) (float64, int64) {
	m := p.NewMachine(0)
	passes, err := m.Alloc(int64(len(pipeline)) * 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, pp := range pipeline {
		m.Mem()[passes+int64(i*2)] = pp[0]
		m.Mem()[passes+int64(i*2)+1] = pp[1]
	}
	srcImg, _ := m.Alloc(int64(n))
	dstImg, _ := m.Alloc(int64(n))
	var checksum int64
	for f := 0; f < frames; f++ {
		for i := 0; i < n; i++ {
			m.Mem()[srcImg+int64(i)] = int64((i*7 + f*13) % 256)
		}
		if _, err := m.Call("shade", passes, int64(len(pipeline)), srcImg, dstImg, int64(n)); err != nil {
			log.Fatal(err)
		}
		// Validate a scanline against the host shader.
		for i := 0; i < n; i += 97 {
			want := goldShade(int64((i*7 + f*13) % 256))
			if got := m.Mem()[dstImg+int64(i)]; got != want {
				log.Fatalf("frame %d pixel %d: got %d want %d", f, i, got, want)
			}
		}
		checksum += m.Mem()[dstImg+int64(f%n)]
	}
	st := m.Region(0)
	return float64(st.ExecCycles) / float64(int(st.Invocations)*n), checksum
}

func main() {
	const (
		frames = 12
		pixels = 4096
	)
	static, err := dyncc.CompileStatic(src)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := dyncc.CompileDynamic(src)
	if err != nil {
		log.Fatal(err)
	}
	sc, scheck := run(static, frames, pixels)
	dc, dcheck := run(dynamic, frames, pixels)
	if scheck != dcheck {
		log.Fatalf("checksum mismatch: %d vs %d", scheck, dcheck)
	}

	fmt.Printf("pixel shader, %d-pass pipeline, %d frames x %d pixels\n",
		len(pipeline), frames, pixels)
	fmt.Printf("  static interpreter:   %5.1f cycles/pixel\n", sc)
	fmt.Printf("  specialized shader:   %5.1f cycles/pixel (%.2fx)\n", dc, sc/dc)
	ss := dynamic.StitchStats(0)
	fmt.Printf("\nstitcher unrolled %d passes, resolved %d dispatch branches, "+
		"%d strength reductions\n",
		ss.LoopIterations, ss.BranchesResolved, ss.StrengthReductions)
}
