// Quickstart: the paper's running example (sections 2 and 4) — the cache
// lookup routine of a cache simulator. The cache configuration is a
// run-time constant; the dynamic compiler turns the divides into shifts,
// the modulus into a mask, and completely unrolls the associativity-way
// probe loop. Run it to see the speedup and the stitched code.
package main

import (
	"fmt"
	"log"

	"dyncc"
)

const src = `
struct SetStructure { int tag; int data; };
struct CacheLine { struct SetStructure **sets; };
struct Cache {
    unsigned blockSize;
    unsigned numLines;
    int associativity;
    struct CacheLine **lines;
};

int cacheLookup(unsigned addr, struct Cache *cache) {
    dynamicRegion (cache) {
        unsigned blockSize = cache->blockSize;
        unsigned numLines = cache->numLines;
        unsigned tag = addr / (blockSize * numLines);
        unsigned line = (addr / blockSize) % numLines;
        struct SetStructure **setArray = cache->lines[line]->sets;
        int assoc = cache->associativity;
        int set;
        unrolled for (set = 0; set < assoc; set++) {
            if (setArray[set] dynamic-> tag == tag)
                return 1; /* CacheHit */
        }
        return 0; /* CacheMiss */
    }
    return -1;
}`

// buildCache lays out the cache structure in VM memory:
// Cache{blockSize, numLines, associativity, lines*} -> CacheLine{sets*} ->
// SetStructure{tag, data}.
func buildCache(m *dyncc.Machine, blockSize, numLines, assoc int64) int64 {
	alloc := func(n int64) int64 {
		a, err := m.Alloc(n)
		if err != nil {
			log.Fatal(err)
		}
		return a
	}
	mem := m.Mem()
	cache := alloc(4)
	lines := alloc(numLines)
	mem[cache+0], mem[cache+1], mem[cache+2], mem[cache+3] = blockSize, numLines, assoc, lines
	for l := int64(0); l < numLines; l++ {
		lineS := alloc(1)
		mem[lines+l] = lineS
		sets := alloc(assoc)
		mem[lineS] = sets
		for w := int64(0); w < assoc; w++ {
			set := alloc(2)
			mem[sets+w] = set
			mem[set] = -1
		}
	}
	return cache
}

func run(p *dyncc.Program, lookups int) (hits int64, cycles float64) {
	m := p.NewMachine(0)
	cache := buildCache(m, 32, 512, 4)
	mem := m.Mem()
	// Warm the first 64 probed addresses into the cache: the probe stride
	// revisits each line every 16 addresses, so each of the 4 ways holds
	// one generation.
	for i := int64(0); i < 64; i++ {
		addr := i * 1024
		tag := addr / (32 * 512)
		line := (addr / 32) % 512
		lines := mem[cache+3]
		lineS := mem[lines+line]
		sets := mem[lineS]
		set := mem[sets+(i/16)]
		mem[set] = tag
	}
	for i := 0; i < lookups; i++ {
		h, err := m.Call("cacheLookup", int64(i*1024), cache)
		if err != nil {
			log.Fatal(err)
		}
		hits += h
	}
	st := m.Region(0)
	return hits, float64(st.ExecCycles) / float64(st.Invocations)
}

func main() {
	static, err := dyncc.CompileStatic(src)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := dyncc.CompileDynamic(src)
	if err != nil {
		log.Fatal(err)
	}

	const lookups = 10000
	sh, sc := run(static, lookups)
	dh, dc := run(dynamic, lookups)
	if sh != dh {
		log.Fatalf("static and dynamic disagree: %d vs %d hits", sh, dh)
	}

	fmt.Printf("cache lookup, 512 lines x 32-byte blocks, 4-way associative\n")
	fmt.Printf("  %d lookups, %d hits\n", lookups, sh)
	fmt.Printf("  statically compiled:   %.1f cycles/lookup\n", sc)
	fmt.Printf("  dynamically compiled:  %.1f cycles/lookup\n", dc)
	fmt.Printf("  asymptotic speedup:    %.2fx\n", sc/dc)

	st := dynamic.StitchStats(0)
	fmt.Printf("\nstitcher: %d instructions, %d holes patched, %d branches resolved,\n"+
		"          %d loop iterations unrolled, %d strength reductions\n",
		st.InstsStitched, st.HolesPatched, st.BranchesResolved,
		st.LoopIterations, st.StrengthReductions)

	fmt.Printf("\nstitcher directives (paper Table 1 vocabulary):\n")
	for _, d := range dynamic.RegionTemplates(0).Directives() {
		fmt.Printf("  %s\n", d)
	}
}
