// Multi-cache simulator (paper section 2): "if the cache simulator were
// simulating multiple cache configurations simultaneously, each
// configuration would have its own cache values and need cache lookup code
// specialized to each of them. Accordingly, we allow a dynamic region to be
// keyed by a list of run-time constants."
//
// This example simulates three cache configurations over one address trace
// with a keyed dynamic region: the lookup+LRU-update path is stitched once
// per configuration (divides become shifts, the way loop unrolls to the
// configuration's associativity) and cached by key.
package main

import (
	"fmt"
	"log"

	"dyncc"
)

const src = `
/* Cache layout (one word per field):
   Cache { blockSize, numLines, assoc, tags*, stamps*, clock }
   tags and stamps are numLines*assoc element arrays. */
struct Cache {
    unsigned blockSize;
    unsigned numLines;
    int assoc;
    int *tags;
    int *stamps;
    int clock;
};

/* access returns 1 on hit, 0 on miss, updating LRU state either way. */
int access(unsigned addr, struct Cache *cache) {
    dynamicRegion key(cache) () {
        unsigned blockSize = cache->blockSize;
        unsigned numLines = cache->numLines;
        int assoc = cache->assoc;
        int *tags = cache->tags;
        int *stamps = cache->stamps;

        unsigned tag = addr / (blockSize * numLines);
        unsigned line = (addr / blockSize) % numLines;
        int base = (int)(line * (unsigned)assoc);

        int now = cache dynamic-> clock + 1;
        cache dynamic-> clock = now;

        int victim = 0;
        int victimStamp = now;
        int w;
        unrolled for (w = 0; w < assoc; w++) {
            if (tags dynamic[base + w] == (int)tag) {
                stamps dynamic[base + w] = now;
                return 1; /* hit */
            }
            if (stamps dynamic[base + w] < victimStamp) {
                victimStamp = stamps dynamic[base + w];
                victim = w;
            }
        }
        tags dynamic[base + victim] = (int)tag;
        stamps dynamic[base + victim] = now;
        return 0; /* miss */
    }
    return -1;
}`

type config struct {
	name                       string
	blockSize, numLines, assoc int64
}

func buildCache(m *dyncc.Machine, c config) int64 {
	alloc := func(n int64) int64 {
		a, err := m.Alloc(n)
		if err != nil {
			log.Fatal(err)
		}
		return a
	}
	mem := m.Mem()
	cache := alloc(6)
	ways := c.numLines * c.assoc
	tags := alloc(ways)
	stamps := alloc(ways)
	for i := int64(0); i < ways; i++ {
		mem[tags+i] = -1
	}
	mem[cache+0] = c.blockSize
	mem[cache+1] = c.numLines
	mem[cache+2] = c.assoc
	mem[cache+3] = tags
	mem[cache+4] = stamps
	mem[cache+5] = 0
	return cache
}

// trace yields a mixed address stream: a hot working set, strided scans,
// and pseudo-random far touches.
func trace(n int) []int64 {
	rng := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	out := make([]int64, n)
	for i := range out {
		switch i % 4 {
		case 0, 1: // hot set
			out[i] = int64((i * 64) % 8192)
		case 2: // streaming scan
			out[i] = int64(65536 + i*32)
		default: // far touch
			out[i] = int64(next() % (1 << 22))
		}
	}
	return out
}

// goldSim simulates a configuration host-side for validation.
func goldSim(c config, addrs []int64) int {
	type way struct {
		tag   int64
		stamp int64
	}
	lines := make([][]way, c.numLines)
	for i := range lines {
		lines[i] = make([]way, c.assoc)
		for w := range lines[i] {
			lines[i][w].tag = -1
		}
	}
	hits := 0
	clock := int64(0)
	for _, a := range addrs {
		clock++
		tag := a / (c.blockSize * c.numLines)
		line := (a / c.blockSize) % c.numLines
		hit := false
		victim, victimStamp := 0, clock
		for w := range lines[line] {
			if lines[line][w].tag == tag {
				lines[line][w].stamp = clock
				hit = true
				break
			}
			if lines[line][w].stamp < victimStamp {
				victimStamp = lines[line][w].stamp
				victim = w
			}
		}
		if hit {
			hits++
		} else {
			lines[line][victim] = way{tag: tag, stamp: clock}
		}
	}
	return hits
}

func main() {
	configs := []config{
		{"16KB direct-mapped, 32B blocks", 32, 512, 1},
		{"16KB 4-way, 32B blocks", 32, 128, 4},
		{"8KB 2-way, 64B blocks", 64, 64, 2},
	}
	addrs := trace(30000)

	dynamic, err := dyncc.CompileDynamic(src)
	if err != nil {
		log.Fatal(err)
	}
	static, err := dyncc.CompileStatic(src)
	if err != nil {
		log.Fatal(err)
	}

	run := func(p *dyncc.Program) ([]int, float64, *dyncc.Machine) {
		m := p.NewMachine(0)
		caches := make([]int64, len(configs))
		for i, c := range configs {
			caches[i] = buildCache(m, c)
		}
		hits := make([]int, len(configs))
		// Simulate the three configurations simultaneously, interleaved.
		for _, a := range addrs {
			for i := range configs {
				h, err := m.Call("access", a, caches[i])
				if err != nil {
					log.Fatal(err)
				}
				hits[i] += int(h)
			}
		}
		st := m.Region(0)
		return hits, float64(st.ExecCycles) / float64(st.Invocations), m
	}

	dh, dc, dm := run(dynamic)
	sh, sc, _ := run(static)

	fmt.Printf("multi-configuration cache simulator, %d accesses x %d configs\n\n",
		len(addrs), len(configs))
	for i, c := range configs {
		gold := goldSim(c, addrs)
		status := "ok"
		if dh[i] != gold || sh[i] != gold {
			status = fmt.Sprintf("MISMATCH gold=%d static=%d dynamic=%d", gold, sh[i], dh[i])
		}
		fmt.Printf("  %-32s hit rate %5.1f%%  [%s]\n",
			c.name, 100*float64(dh[i])/float64(len(addrs)), status)
	}
	fmt.Printf("\n  static:   %.1f cycles/access\n", sc)
	fmt.Printf("  dynamic:  %.1f cycles/access (%.2fx)\n", dc, sc/dc)
	fmt.Printf("  compiled versions cached: %d (one per configuration key)\n",
		dm.Region(0).Compiles)
}
