// Command dynrun compiles a MiniC file and calls a function in it on the
// built-in VM, reporting the result and cycle counts. Region statistics
// (set-up, stitch, execution cycles) are printed for each dynamic region.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"dyncc/internal/core"
)

func main() {
	dynamic := flag.Bool("dynamic", true, "compile dynamic regions")
	optimize := flag.Bool("O", true, "run the static optimizer")
	fn := flag.String("func", "main", "function to call")
	mem := flag.Int("mem", 0, "VM memory in words (0 = default)")
	trace := flag.String("trace", "", "write a per-instruction execution trace to this file (- for stderr)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dynrun [flags] file.mc [args...]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynrun:", err)
		os.Exit(1)
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynrun: bad argument %q: %v\n", a, err)
			os.Exit(1)
		}
		args = append(args, v)
	}

	c, err := core.Compile(string(src), core.Config{Dynamic: *dynamic, Optimize: *optimize})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynrun:", err)
		os.Exit(1)
	}
	m := c.NewMachine(*mem)
	m.Output = os.Stdout
	flushTrace := func() {}
	if *trace != "" {
		// Tracing emits one line per instruction; buffer it so the trace
		// write doesn't dominate the run it is observing.
		dst := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dynrun:", err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		w := bufio.NewWriterSize(dst, 1<<20)
		defer w.Flush()
		flushTrace = func() { w.Flush() }
		m.Trace = w
	}
	ret, err := m.Call(*fn, args...)
	if err != nil {
		flushTrace() // keep the trace up to the trap (os.Exit skips defers)
		fmt.Fprintln(os.Stderr, "dynrun:", err)
		os.Exit(1)
	}
	fmt.Printf("%s(...) = %d\n", *fn, ret)
	fmt.Printf("cycles: %d, instructions: %d\n", m.Cycles, m.Insts)
	for i := 0; i < c.Output.Prog.NumRegions; i++ {
		rc := m.Region(i)
		if rc.Invocations == 0 {
			continue
		}
		fmt.Printf("region %d: %d invocations, %d exec cycles, %d set-up, %d stitch, %d stitched insts\n",
			i, rc.Invocations, rc.ExecCycles, rc.SetupCycles, rc.StitchCycles, rc.StitchedInsts)
	}
}
