// Command dynrun compiles a MiniC file and calls a function in it on the
// built-in VM, reporting the result and cycle counts. Region statistics
// (set-up, stitch, execution cycles) are printed for each dynamic region.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dyncc/internal/core"
)

// passList collects -disable-pass values (repeatable, comma-separated).
type passList []string

func (l *passList) String() string { return strings.Join(*l, ",") }

func (l *passList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*l = append(*l, s)
		}
	}
	return nil
}

func main() {
	dynamic := flag.Bool("dynamic", true, "compile dynamic regions")
	optimize := flag.Bool("O", true, "run the static optimizer")
	autoregion := flag.Bool("autoregion", false, "speculatively promote unannotated functions to dynamic regions (profile-guided, guarded)")
	promoteAt := flag.Uint64("promote-threshold", 0, "calls with a stable key tuple before an auto region promotes (0 = default)")
	fn := flag.String("func", "main", "function to call")
	mem := flag.Int("mem", 0, "VM memory in words (0 = default)")
	trace := flag.String("trace", "", "write a per-instruction execution trace to this file (- for stderr)")
	dumpir := flag.String("dumpir", "", "dump IR after the named pipeline pass ('all' = every module-mutating pass) to stderr")
	var disable passList
	flag.Var(&disable, "disable-pass", "disable a pipeline pass by name (repeatable, comma-separated; e.g. dce,cse)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dynrun [flags] file.mc [args...]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynrun:", err)
		os.Exit(1)
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynrun: bad argument %q: %v\n", a, err)
			os.Exit(1)
		}
		args = append(args, v)
	}

	cfg := core.Config{Dynamic: *dynamic, Optimize: *optimize, DisablePasses: disable,
		AutoRegion: *autoregion}
	cfg.Auto.PromoteThreshold = *promoteAt
	if *dumpir != "" {
		cfg.DumpIR = func(pass, f, text string) {
			if *dumpir != "all" && *dumpir != pass {
				return
			}
			fmt.Fprintf(os.Stderr, "=== ir after %s: %s\n%s\n", pass, f, text)
		}
	}
	c, err := core.Compile(string(src), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynrun:", err)
		os.Exit(1)
	}
	m := c.NewMachine(*mem)
	m.Output = os.Stdout
	flushTrace := func() {}
	if *trace != "" {
		// Tracing emits one line per instruction; buffer it so the trace
		// write doesn't dominate the run it is observing.
		dst := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dynrun:", err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		w := bufio.NewWriterSize(dst, 1<<20)
		defer w.Flush()
		flushTrace = func() { w.Flush() }
		m.Trace = w
	}
	ret, err := m.Call(*fn, args...)
	if err != nil {
		flushTrace() // keep the trace up to the trap (os.Exit skips defers)
		fmt.Fprintln(os.Stderr, "dynrun:", err)
		os.Exit(1)
	}
	fmt.Printf("%s(...) = %d\n", *fn, ret)
	fmt.Printf("cycles: %d, instructions: %d\n", m.Cycles, m.Insts)
	for i := 0; i < c.Output.Prog.NumRegions; i++ {
		rc := m.Region(i)
		if rc.Invocations == 0 {
			continue
		}
		fmt.Printf("region %d: %d invocations, %d exec cycles, %d set-up, %d stitch, %d stitched insts\n",
			i, rc.Invocations, rc.ExecCycles, rc.SetupCycles, rc.StitchCycles, rc.StitchedInsts)
	}
	if *autoregion {
		cs := c.Runtime.CacheStats()
		fmt.Printf("auto: %d promotions, %d deoptimizations\n", cs.Promotions, cs.Deopts)
	}
}
