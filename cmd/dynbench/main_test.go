package main

import (
	"os"
	"path/filepath"
	"testing"
)

// parseHostBaseline must accept both recorded baseline schemas — the
// shared {mode, config, results} envelope and the pre-envelope flat
// report — and reject files carrying no host rows in either, instead of
// silently comparing against an empty baseline.
func TestParseHostBaseline(t *testing.T) {
	read := func(name string) []byte {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	t.Run("legacy flat", func(t *testing.T) {
		rows, err := parseHostBaseline(read("hostbaseline_legacy.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("got %d rows, want 2", len(rows))
		}
		if rows[0].Name != "warm dispatch" || rows[0].NsPerInst != 8.0 {
			t.Fatalf("row 0 = %+v", rows[0])
		}
		if rows[1].Name != "matrix multiply" || rows[1].GuestInsts != 45000000 {
			t.Fatalf("row 1 = %+v", rows[1])
		}
	})

	t.Run("envelope", func(t *testing.T) {
		rows, err := parseHostBaseline(read("hostbaseline_envelope.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatalf("got %d rows, want 1", len(rows))
		}
		if rows[0].Name != "warm dispatch" || rows[0].NsPerInst != 7.0 {
			t.Fatalf("row 0 = %+v", rows[0])
		}
	})

	t.Run("no host rows", func(t *testing.T) {
		for _, src := range []string{
			`{"mode": "table", "config": {}, "results": {}}`,
			`{}`,
		} {
			if rows, err := parseHostBaseline([]byte(src)); err == nil {
				t.Fatalf("accepted %s: %+v", src, rows)
			}
		}
	})

	t.Run("malformed", func(t *testing.T) {
		if _, err := parseHostBaseline([]byte("{not json")); err == nil {
			t.Fatal("accepted malformed JSON")
		}
	})
}
