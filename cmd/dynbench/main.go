// Command dynbench regenerates the paper's experimental results: Table 2
// (speedups, breakeven points, overheads), Table 3 (optimizations applied
// dynamically), the Figure 1 / section 4 cache-lookup walk-through, and the
// section 5 register-actions result.
package main

import (
	"flag"
	"fmt"
	"os"

	"dyncc/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "print table 2 or 3 (0 = both)")
	regact := flag.Bool("regactions", false, "also run the register-actions extension (section 5)")
	figure1 := flag.Bool("figure1", false, "print the Figure 1 / section 4 cache-lookup walk-through")
	merged := flag.Bool("merged", false, "use the section 7 merged set-up+stitch mode")
	uses := flag.Int("uses", 0, "override workload size")
	flag.Parse()

	cfg := bench.Config{Uses: *uses, MergedStitch: *merged}
	rows, err := bench.Table2(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynbench:", err)
		os.Exit(1)
	}
	if *table == 0 || *table == 2 {
		fmt.Println("Table 2: Speedup and Breakeven Point Results")
		bench.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if *table == 0 || *table == 3 {
		fmt.Println("Table 3: Optimizations Applied Dynamically")
		bench.PrintTable3(os.Stdout, bench.Table3(rows))
		fmt.Println()
	}
	if *figure1 {
		if err := bench.Figure1(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dynbench:", err)
			os.Exit(1)
		}
	}
	if *regact {
		fmt.Println("Section 5: register actions (calculator)")
		base, err := bench.Calculator(bench.Config{Uses: *uses})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynbench:", err)
			os.Exit(1)
		}
		ra, err := bench.Calculator(bench.Config{Uses: *uses, RegisterActions: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynbench:", err)
			os.Exit(1)
		}
		fmt.Printf("  plain stitching:   speedup %.2f\n", base.Speedup)
		fmt.Printf("  register actions:  speedup %.2f (loads promoted %d, stores promoted %d)\n",
			ra.Speedup, ra.Stitch.LoadsPromoted, ra.Stitch.StoresPromoted)
	}
}
