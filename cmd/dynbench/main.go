// Command dynbench regenerates the paper's experimental results: Table 2
// (speedups, breakeven points, overheads), Table 3 (optimizations applied
// dynamically), the Figure 1 / section 4 cache-lookup walk-through, the
// section 5 register-actions result, and — beyond the paper — a
// parallel-machines sweep exercising the cross-machine stitch cache.
//
// With -json the run's measurements are also written machine-readable for
// regression tracking. Every mode shares one envelope:
//
//	{"mode": "...", "config": {...}, "results": {...}}
//
// where mode names the benchmarks that ran (joined with "+" when several
// ran in one invocation), config records the effective knob settings
// (including GOMAXPROCS), and results holds one section per benchmark.
//
//	dynbench -parallel 8 -json BENCH_1.json
//
// -cachechurn measures the bounded stitch cache under a high-cardinality
// Zipf-distributed key stream (eviction churn, re-stitches, hot-set hit
// rate):
//
//	dynbench -cachechurn -json BENCH_3.json
//
// -asyncstitch measures caller-visible cold-key latency with inline versus
// background stitching (the tiered-execution result):
//
//	dynbench -asyncstitch -json BENCH_4.json
//
// -stitchperf compares the stitcher's two emission paths — precompiled
// copy-and-patch stencils versus the interpretive template walk
// (`-disable-pass stencil`) — on a stitch-heavy keyed region:
//
//	dynbench -stitchperf -json BENCH_6.json
//
// -serve runs the multi-tenant serving benchmark: a testgen-generated
// fleet of tenant programs batch-compiled through CompileBatch (timed
// against serial compilation, byte-identity checked), then served with
// Zipf traffic over tenants and keys under capped per-region caches and
// async stitching:
//
//	dynbench -serve -json BENCH_7.json
//
// -coldstart measures restart-to-warm against the persistent (level-0)
// code cache: a fresh runtime serves a sweep of distinct keys against an
// empty on-disk store versus one a previous process populated:
//
//	dynbench -coldstart -json BENCH_8.json
//
// -inline compares the demand-driven inlining pass against its ablation
// (`-disable-pass inline`) on a helper-heavy keyed region, plus an
// annotation-stripped subject that auto-promotes through its calls:
//
//	dynbench -inline -json BENCH_10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dyncc/internal/bench"
)

// jsonEnvelope is the shared -json shape for every mode.
type jsonEnvelope struct {
	Mode    string      `json:"mode"`
	Config  jsonConfig  `json:"config"`
	Results jsonResults `json:"results"`
}

// jsonConfig records the effective settings of the run.
type jsonConfig struct {
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Uses         int    `json:"uses,omitempty"`
	Merged       bool   `json:"merged,omitempty"`
	Parallel     int    `json:"parallel,omitempty"`
	ChurnCap     int    `json:"churn_cap,omitempty"`
	ChurnKeys    int    `json:"churn_keys,omitempty"`
	StitchIter   int    `json:"stitch_iters,omitempty"`
	CTIters      int    `json:"ct_iters,omitempty"`
	HostDur      string `json:"host_dur,omitempty"`
	Tenants      int    `json:"tenants,omitempty"`
	Requests     int    `json:"requests,omitempty"`
	Workers      int    `json:"compile_workers,omitempty"`
	ColdKeys     int    `json:"cold_keys,omitempty"`
	AutoPhases   int    `json:"auto_phases,omitempty"`
	AutoPhaseLen int    `json:"auto_phase_len,omitempty"`
	InlineCalls  int    `json:"inline_calls,omitempty"`
}

// jsonResults holds one section per benchmark that ran.
type jsonResults struct {
	Table2         []jsonRow                `json:"table2,omitempty"`
	Parallel       []*bench.ParallelResult  `json:"parallel,omitempty"`
	Host           []*bench.HostResult      `json:"host,omitempty"`
	HostBaseline   []*bench.HostResult      `json:"host_baseline,omitempty"`
	HostComparison []*bench.HostComparison  `json:"host_comparison,omitempty"`
	CacheChurn     *bench.ChurnResult       `json:"cache_churn,omitempty"`
	CompileTime    *bench.CompileTimeResult `json:"compile_time,omitempty"`
	ColdBurst      *bench.ColdBurstResult   `json:"cold_burst,omitempty"`
	StitchPerf     *bench.StitchPerfResult  `json:"stitch_perf,omitempty"`
	Serve          *bench.ServeResult       `json:"serve,omitempty"`
	ColdStart      *bench.ColdStartResult   `json:"cold_start,omitempty"`
	AutoRegion     *bench.AutoRegionResult  `json:"auto_region,omitempty"`
	Inline         *bench.InlineResult      `json:"inline,omitempty"`
}

// legacyReport is the pre-envelope flat schema, still accepted by
// -hostbaseline so old BENCH_2.json baselines keep working.
type legacyReport struct {
	Host []*bench.HostResult `json:"host,omitempty"`
}

type jsonRow struct {
	Name              string  `json:"name"`
	Config            string  `json:"config"`
	Speedup           float64 `json:"speedup"`
	StaticPerUnit     float64 `json:"static_cycles_per_unit"`
	DynPerUnit        float64 `json:"dynamic_cycles_per_unit"`
	Breakeven         int     `json:"breakeven"`
	SetupCycles       uint64  `json:"setup_cycles"`
	StitchCycles      uint64  `json:"stitch_cycles"`
	StitchedInsts     uint64  `json:"stitched_insts"`
	Compiles          uint64  `json:"compiles"`
	CyclesPerStitched float64 `json:"cycles_per_stitched_inst"`
}

func writeEnvelope(path string, modes []string, cfg jsonConfig, results jsonResults, fail func(error)) {
	cfg.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep := jsonEnvelope{Mode: strings.Join(modes, "+"), Config: cfg, Results: results}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func main() {
	table := flag.Int("table", 0, "print table 2 or 3 (0 = both)")
	regact := flag.Bool("regactions", false, "also run the register-actions extension (section 5)")
	figure1 := flag.Bool("figure1", false, "print the Figure 1 / section 4 cache-lookup walk-through")
	merged := flag.Bool("merged", false, "use the section 7 merged set-up+stitch mode")
	uses := flag.Int("uses", 0, "override workload size")
	parallel := flag.Int("parallel", 0, "run the parallel-machines sweep up to N machines")
	cachechurn := flag.Bool("cachechurn", false, "run the bounded-cache churn benchmark (Zipf keys over a keyed region)")
	asyncstitch := flag.Bool("asyncstitch", false, "run the cold-burst latency comparison (inline vs background stitching)")
	stitchperf := flag.Bool("stitchperf", false, "compare stencil vs interpretive stitch cost on a stitch-heavy region")
	spIters := flag.Int("stitchiters", 0, "stitches per subject for -stitchperf (0 = default 20000)")
	compiletime := flag.Bool("compiletime", false, "measure per-pass static compile latency over the example corpus")
	ctIters := flag.Int("ctiters", 0, "compiles per program for -compiletime (0 = default 30)")
	churnCap := flag.Int("churncap", 0, "cache cap (MaxEntries) for -cachechurn (0 = default 256)")
	churnKeys := flag.Int("churnkeys", 0, "distinct keys for -cachechurn (0 = default 4096)")
	coldstart := flag.Bool("coldstart", false, "run the restart-to-warm benchmark (persistent store, populated vs empty)")
	coldkeys := flag.Int("coldkeys", 0, "single working-set size for -coldstart (0 = default sweep 64/256/1024)")
	autoregion := flag.Bool("autoregion", false, "run the automatic-promotion comparison (speculative vs static vs hand-annotated)")
	autoPhases := flag.Int("autophases", 0, "key phases for -autoregion (0 = default 8)")
	autoPhaseLen := flag.Int("autophaselen", 0, "calls per phase for -autoregion (0 = default 512)")
	inline := flag.Bool("inline", false, "run the demand-driven inlining comparison (inlined vs -disable-pass inline)")
	inlineCalls := flag.Int("inlinecalls", 0, "timed calls per subject for -inline (0 = default 20000)")
	serve := flag.Bool("serve", false, "run the multi-tenant Zipf serving benchmark (batch compile + serve latency)")
	tenants := flag.Int("tenants", 0, "tenant fleet size for -serve (0 = default 2000)")
	requests := flag.Int("requests", 0, "total serve requests for -serve (0 = default 100000)")
	workers := flag.Int("compileworkers", 0, "CompileBatch pool size for -serve (0 = default 8)")
	jsonPath := flag.String("json", "", "also write measurements to this file as JSON")
	hostperf := flag.Bool("hostperf", false, "measure host ns per guest instruction instead of the guest-cycle tables")
	hostBase := flag.String("hostbaseline", "", "baseline JSON (a previous -hostperf run) to compare against")
	hostDur := flag.Duration("hostdur", 300*time.Millisecond, "minimum timed window per host-perf kernel")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dynbench:", err)
		os.Exit(1)
	}

	if *hostperf {
		runHostPerf(*hostBase, *jsonPath, *hostDur, fail)
		return
	}

	modes := []string{"table"}
	var results jsonResults
	cfgRec := jsonConfig{Uses: *uses, Merged: *merged}

	cfg := bench.Config{Uses: *uses, MergedStitch: *merged}
	rows, err := bench.Table2(cfg)
	if err != nil {
		fail(err)
	}
	if *table == 0 || *table == 2 {
		fmt.Println("Table 2: Speedup and Breakeven Point Results")
		bench.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if *table == 0 || *table == 3 {
		fmt.Println("Table 3: Optimizations Applied Dynamically")
		bench.PrintTable3(os.Stdout, bench.Table3(rows))
		fmt.Println()
	}
	for _, m := range rows {
		results.Table2 = append(results.Table2, jsonRow{
			Name: m.Name, Config: m.Config, Speedup: m.Speedup,
			StaticPerUnit: m.StaticPerUnit, DynPerUnit: m.DynPerUnit,
			Breakeven: m.Breakeven, SetupCycles: m.SetupCycles,
			StitchCycles: m.StitchCycles, StitchedInsts: m.StitchedInsts,
			Compiles: m.Compiles, CyclesPerStitched: m.CyclesPerStitched,
		})
	}
	if *figure1 {
		if err := bench.Figure1(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *regact {
		fmt.Println("Section 5: register actions (calculator)")
		base, err := bench.Calculator(bench.Config{Uses: *uses})
		if err != nil {
			fail(err)
		}
		ra, err := bench.Calculator(bench.Config{Uses: *uses, RegisterActions: true})
		if err != nil {
			fail(err)
		}
		fmt.Printf("  plain stitching:   speedup %.2f\n", base.Speedup)
		fmt.Printf("  register actions:  speedup %.2f (loads promoted %d, stores promoted %d)\n",
			ra.Speedup, ra.Stitch.LoadsPromoted, ra.Stitch.StoresPromoted)
	}

	if *cachechurn {
		modes = append(modes, "cachechurn")
		cfgRec.ChurnCap = *churnCap
		cfgRec.ChurnKeys = *churnKeys
		results.CacheChurn, err = bench.CacheChurn(0, *uses, *churnKeys, *churnCap)
		if err != nil {
			fail(err)
		}
		fmt.Println("Cache churn: bounded stitch cache under a Zipf key stream")
		bench.PrintChurn(os.Stdout, results.CacheChurn)
		fmt.Println()
	}

	if *compiletime {
		modes = append(modes, "compiletime")
		cfgRec.CTIters = *ctIters
		results.CompileTime, err = bench.CompileTime(*ctIters)
		if err != nil {
			fail(err)
		}
		fmt.Println("Compile time: per-pass static compile latency (example corpus)")
		bench.PrintCompileTime(os.Stdout, results.CompileTime)
		fmt.Println()
	}

	if *asyncstitch {
		modes = append(modes, "asyncstitch")
		results.ColdBurst, err = bench.ColdBurst(0, 0)
		if err != nil {
			fail(err)
		}
		fmt.Println("Cold burst: caller-visible latency, inline vs background stitching")
		bench.PrintColdBurst(os.Stdout, results.ColdBurst)
		fmt.Println()
	}

	if *stitchperf {
		modes = append(modes, "stitchperf")
		cfgRec.StitchIter = *spIters
		results.StitchPerf, err = bench.StitchPerf(*spIters)
		if err != nil {
			fail(err)
		}
		fmt.Println("Stitch perf: copy-and-patch stencils vs interpretive stitching")
		bench.PrintStitchPerf(os.Stdout, results.StitchPerf)
		fmt.Println()
	}

	if *coldstart {
		modes = append(modes, "coldstart")
		cfgRec.ColdKeys = *coldkeys
		var sizes []int
		if *coldkeys > 0 {
			sizes = []int{*coldkeys}
		}
		results.ColdStart, err = bench.ColdStart(sizes)
		if err != nil {
			fail(err)
		}
		fmt.Println("Cold start: restart-to-warm, empty vs populated persistent store")
		bench.PrintColdStart(os.Stdout, results.ColdStart)
		fmt.Println()
	}

	if *parallel > 0 {
		modes = append(modes, "parallel")
		cfgRec.Parallel = *parallel
		results.Parallel, err = bench.ParallelSweep(*parallel, *uses)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Parallel machines: shared stitch cache, %d distinct keys (GOMAXPROCS=%d)\n",
			results.Parallel[0].Keys, runtime.GOMAXPROCS(0))
		bench.PrintParallel(os.Stdout, results.Parallel)
		fmt.Println()
	}

	if *autoregion {
		modes = append(modes, "autoregion")
		cfgRec.AutoPhases = *autoPhases
		cfgRec.AutoPhaseLen = *autoPhaseLen
		results.AutoRegion, err = bench.AutoRegion(*autoPhases, *autoPhaseLen)
		if err != nil {
			fail(err)
		}
		fmt.Println("Auto region: speculative promotion vs static vs hand-annotated")
		bench.PrintAutoRegion(os.Stdout, results.AutoRegion)
		fmt.Println()
	}

	if *inline {
		modes = append(modes, "inline")
		cfgRec.InlineCalls = *inlineCalls
		results.Inline, err = bench.Inline(*inlineCalls)
		if err != nil {
			fail(err)
		}
		fmt.Println("Inlining: specialization through call boundaries vs ablated")
		bench.PrintInline(os.Stdout, results.Inline)
		fmt.Println()
	}

	if *serve {
		modes = append(modes, "serve")
		cfgRec.Tenants = *tenants
		cfgRec.Requests = *requests
		cfgRec.Workers = *workers
		results.Serve, err = bench.Serve(bench.ServeConfig{
			Tenants:        *tenants,
			Requests:       *requests,
			CompileWorkers: *workers,
			Async:          true,
		})
		if err != nil {
			fail(err)
		}
		fmt.Println("Serve: multi-tenant batch compile + Zipf serving")
		bench.PrintServe(os.Stdout, results.Serve)
		fmt.Println()
	}

	if *jsonPath != "" {
		writeEnvelope(*jsonPath, modes, cfgRec, results, fail)
	}
}

// parseHostBaseline decodes a -hostbaseline file in either accepted
// schema: the shared {mode, config, results} envelope (host rows under
// results.host) or the pre-envelope flat report (host rows at top level).
// A file in neither schema — or an envelope without host rows — yields an
// error rather than a silently empty baseline.
func parseHostBaseline(data []byte) ([]*bench.HostResult, error) {
	var rep jsonEnvelope
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Results.Host != nil {
		return rep.Results.Host, nil
	}
	// Pre-envelope baselines kept the host rows at top level.
	var old legacyReport
	if err := json.Unmarshal(data, &old); err == nil && old.Host != nil {
		return old.Host, nil
	}
	return nil, fmt.Errorf("no host rows found (neither envelope results.host nor legacy top-level host)")
}

// runHostPerf measures host ns per guest instruction (the interpreter-loop
// cost the fusion pipeline and attribution plan optimize), optionally
// comparing against a recorded baseline, and writes BENCH_2.json-style
// output when -json is given.
func runHostPerf(basePath, jsonPath string, minDur time.Duration, fail func(error)) {
	rows, err := bench.HostPerf(bench.Config{}, minDur)
	if err != nil {
		fail(err)
	}
	var baseline []*bench.HostResult
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			fail(err)
		}
		baseline, err = parseHostBaseline(data)
		if err != nil {
			fail(fmt.Errorf("parse %s: %w", basePath, err))
		}
	}
	cmp := bench.CompareHost(rows, baseline)
	fmt.Println("Host performance: ns per guest instruction (warm interpreter loop)")
	bench.PrintHost(os.Stdout, rows, cmp)

	if jsonPath != "" {
		writeEnvelope(jsonPath, []string{"hostperf"},
			jsonConfig{HostDur: minDur.String()},
			jsonResults{Host: rows, HostBaseline: baseline, HostComparison: cmp},
			fail)
	}
}
