// Command dynbench regenerates the paper's experimental results: Table 2
// (speedups, breakeven points, overheads), Table 3 (optimizations applied
// dynamically), the Figure 1 / section 4 cache-lookup walk-through, the
// section 5 register-actions result, and — beyond the paper — a
// parallel-machines sweep exercising the cross-machine stitch cache.
//
// With -json the run's measurements are also written machine-readable
// (benchmark name, cycle counts, speedups, and parallel stitch throughput),
// e.g. for regression tracking:
//
//	dynbench -parallel 8 -json BENCH_1.json
//
// -cachechurn measures the bounded stitch cache under a high-cardinality
// Zipf-distributed key stream (eviction churn, re-stitches, hot-set hit
// rate):
//
//	dynbench -cachechurn -json BENCH_3.json
//
// -asyncstitch measures caller-visible cold-key latency with inline versus
// background stitching (the tiered-execution result):
//
//	dynbench -asyncstitch -json BENCH_4.json
//
// -stitchperf compares the stitcher's two emission paths — precompiled
// copy-and-patch stencils versus the interpretive template walk
// (`-disable-pass stencil`) — on a stitch-heavy keyed region:
//
//	dynbench -stitchperf -json BENCH_6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dyncc/internal/bench"
)

// jsonReport is the schema written by -json.
type jsonReport struct {
	Table2 []jsonRow `json:"table2,omitempty"`
	// Parallel is present only when -parallel is given.
	Parallel []*bench.ParallelResult `json:"parallel,omitempty"`
	// Host sections are present only when -hostperf is given.
	Host           []*bench.HostResult     `json:"host,omitempty"`
	HostBaseline   []*bench.HostResult     `json:"host_baseline,omitempty"`
	HostComparison []*bench.HostComparison `json:"host_comparison,omitempty"`
	// CacheChurn is present only when -cachechurn is given.
	CacheChurn *bench.ChurnResult `json:"cache_churn,omitempty"`
	// CompileTime is present only when -compiletime is given.
	CompileTime *bench.CompileTimeResult `json:"compile_time,omitempty"`
	// ColdBurst is present only when -asyncstitch is given.
	ColdBurst *bench.ColdBurstResult `json:"cold_burst,omitempty"`
	// StitchPerf is present only when -stitchperf is given.
	StitchPerf *bench.StitchPerfResult `json:"stitch_perf,omitempty"`
	// GOMAXPROCS records how many OS threads the parallel sweep could
	// actually use, so scaling numbers can be interpreted.
	GOMAXPROCS int `json:"gomaxprocs"`
}

type jsonRow struct {
	Name              string  `json:"name"`
	Config            string  `json:"config"`
	Speedup           float64 `json:"speedup"`
	StaticPerUnit     float64 `json:"static_cycles_per_unit"`
	DynPerUnit        float64 `json:"dynamic_cycles_per_unit"`
	Breakeven         int     `json:"breakeven"`
	SetupCycles       uint64  `json:"setup_cycles"`
	StitchCycles      uint64  `json:"stitch_cycles"`
	StitchedInsts     uint64  `json:"stitched_insts"`
	Compiles          uint64  `json:"compiles"`
	CyclesPerStitched float64 `json:"cycles_per_stitched_inst"`
}

func main() {
	table := flag.Int("table", 0, "print table 2 or 3 (0 = both)")
	regact := flag.Bool("regactions", false, "also run the register-actions extension (section 5)")
	figure1 := flag.Bool("figure1", false, "print the Figure 1 / section 4 cache-lookup walk-through")
	merged := flag.Bool("merged", false, "use the section 7 merged set-up+stitch mode")
	uses := flag.Int("uses", 0, "override workload size")
	parallel := flag.Int("parallel", 0, "run the parallel-machines sweep up to N machines")
	cachechurn := flag.Bool("cachechurn", false, "run the bounded-cache churn benchmark (Zipf keys over a keyed region)")
	asyncstitch := flag.Bool("asyncstitch", false, "run the cold-burst latency comparison (inline vs background stitching)")
	stitchperf := flag.Bool("stitchperf", false, "compare stencil vs interpretive stitch cost on a stitch-heavy region")
	spIters := flag.Int("stitchiters", 0, "stitches per subject for -stitchperf (0 = default 20000)")
	compiletime := flag.Bool("compiletime", false, "measure per-pass static compile latency over the example corpus")
	ctIters := flag.Int("ctiters", 0, "compiles per program for -compiletime (0 = default 30)")
	churnCap := flag.Int("churncap", 0, "cache cap (MaxEntries) for -cachechurn (0 = default 256)")
	churnKeys := flag.Int("churnkeys", 0, "distinct keys for -cachechurn (0 = default 4096)")
	jsonPath := flag.String("json", "", "also write measurements to this file as JSON")
	hostperf := flag.Bool("hostperf", false, "measure host ns per guest instruction instead of the guest-cycle tables")
	hostBase := flag.String("hostbaseline", "", "baseline JSON (a previous -hostperf run) to compare against")
	hostDur := flag.Duration("hostdur", 300*time.Millisecond, "minimum timed window per host-perf kernel")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dynbench:", err)
		os.Exit(1)
	}

	if *hostperf {
		runHostPerf(*hostBase, *jsonPath, *hostDur, fail)
		return
	}

	cfg := bench.Config{Uses: *uses, MergedStitch: *merged}
	rows, err := bench.Table2(cfg)
	if err != nil {
		fail(err)
	}
	if *table == 0 || *table == 2 {
		fmt.Println("Table 2: Speedup and Breakeven Point Results")
		bench.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if *table == 0 || *table == 3 {
		fmt.Println("Table 3: Optimizations Applied Dynamically")
		bench.PrintTable3(os.Stdout, bench.Table3(rows))
		fmt.Println()
	}
	if *figure1 {
		if err := bench.Figure1(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *regact {
		fmt.Println("Section 5: register actions (calculator)")
		base, err := bench.Calculator(bench.Config{Uses: *uses})
		if err != nil {
			fail(err)
		}
		ra, err := bench.Calculator(bench.Config{Uses: *uses, RegisterActions: true})
		if err != nil {
			fail(err)
		}
		fmt.Printf("  plain stitching:   speedup %.2f\n", base.Speedup)
		fmt.Printf("  register actions:  speedup %.2f (loads promoted %d, stores promoted %d)\n",
			ra.Speedup, ra.Stitch.LoadsPromoted, ra.Stitch.StoresPromoted)
	}

	var churn *bench.ChurnResult
	if *cachechurn {
		churn, err = bench.CacheChurn(0, *uses, *churnKeys, *churnCap)
		if err != nil {
			fail(err)
		}
		fmt.Println("Cache churn: bounded stitch cache under a Zipf key stream")
		bench.PrintChurn(os.Stdout, churn)
		fmt.Println()
	}

	var ct *bench.CompileTimeResult
	if *compiletime {
		ct, err = bench.CompileTime(*ctIters)
		if err != nil {
			fail(err)
		}
		fmt.Println("Compile time: per-pass static compile latency (example corpus)")
		bench.PrintCompileTime(os.Stdout, ct)
		fmt.Println()
	}

	var cold *bench.ColdBurstResult
	if *asyncstitch {
		cold, err = bench.ColdBurst(0, 0)
		if err != nil {
			fail(err)
		}
		fmt.Println("Cold burst: caller-visible latency, inline vs background stitching")
		bench.PrintColdBurst(os.Stdout, cold)
		fmt.Println()
	}

	var sperf *bench.StitchPerfResult
	if *stitchperf {
		sperf, err = bench.StitchPerf(*spIters)
		if err != nil {
			fail(err)
		}
		fmt.Println("Stitch perf: copy-and-patch stencils vs interpretive stitching")
		bench.PrintStitchPerf(os.Stdout, sperf)
		fmt.Println()
	}

	var sweep []*bench.ParallelResult
	if *parallel > 0 {
		sweep, err = bench.ParallelSweep(*parallel, *uses)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Parallel machines: shared stitch cache, %d distinct keys (GOMAXPROCS=%d)\n",
			sweep[0].Keys, runtime.GOMAXPROCS(0))
		bench.PrintParallel(os.Stdout, sweep)
		fmt.Println()
	}

	if *jsonPath != "" {
		rep := jsonReport{Parallel: sweep, CacheChurn: churn, ColdBurst: cold,
			CompileTime: ct, StitchPerf: sperf, GOMAXPROCS: runtime.GOMAXPROCS(0)}
		for _, m := range rows {
			rep.Table2 = append(rep.Table2, jsonRow{
				Name: m.Name, Config: m.Config, Speedup: m.Speedup,
				StaticPerUnit: m.StaticPerUnit, DynPerUnit: m.DynPerUnit,
				Breakeven: m.Breakeven, SetupCycles: m.SetupCycles,
				StitchCycles: m.StitchCycles, StitchedInsts: m.StitchedInsts,
				Compiles: m.Compiles, CyclesPerStitched: m.CyclesPerStitched,
			})
		}
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// runHostPerf measures host ns per guest instruction (the interpreter-loop
// cost the fusion pipeline and attribution plan optimize), optionally
// comparing against a recorded baseline, and writes BENCH_2.json-style
// output when -json is given.
func runHostPerf(basePath, jsonPath string, minDur time.Duration, fail func(error)) {
	rows, err := bench.HostPerf(bench.Config{}, minDur)
	if err != nil {
		fail(err)
	}
	var baseline []*bench.HostResult
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			fail(err)
		}
		var rep jsonReport
		if err := json.Unmarshal(data, &rep); err != nil {
			fail(fmt.Errorf("parse %s: %w", basePath, err))
		}
		baseline = rep.Host
	}
	cmp := bench.CompareHost(rows, baseline)
	fmt.Println("Host performance: ns per guest instruction (warm interpreter loop)")
	bench.PrintHost(os.Stdout, rows, cmp)

	if jsonPath != "" {
		rep := jsonReport{
			Host:           rows,
			HostBaseline:   baseline,
			HostComparison: cmp,
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
		}
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}
