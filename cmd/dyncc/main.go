// Command dyncc compiles a MiniC source file and dumps the requested
// compilation artifacts: the IR (with region/template/set-up structure),
// the generated VM assembly, and each dynamic region's templates, holes and
// stitcher directives.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dyncc/internal/core"
	"dyncc/internal/ir"
)

// sortedConsts returns the constant values in ascending order.
func sortedConsts(m map[ir.Value]bool) []ir.Value {
	var vs []ir.Value
	for v, ok := range m {
		if ok {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

func main() {
	dynamic := flag.Bool("dynamic", true, "compile dynamic regions (false = static baseline)")
	optimize := flag.Bool("O", true, "run the static optimizer")
	dumpIR := flag.Bool("ir", false, "dump the compiled IR of every function")
	dumpAsm := flag.Bool("asm", false, "dump the VM assembly of every function")
	dumpTmpl := flag.Bool("templates", true, "dump each region's templates and directives")
	dumpAnalysis := flag.Bool("analysis", false, "dump run-time-constant and reachability results per region")
	fn := flag.String("func", "", "restrict dumps to one function")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dyncc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyncc:", err)
		os.Exit(1)
	}
	c, err := core.Compile(string(src), core.Config{Dynamic: *dynamic, Optimize: *optimize})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyncc:", err)
		os.Exit(1)
	}

	want := func(f *ir.Func) bool { return *fn == "" || f.Name == *fn }
	for _, f := range c.Module.Funcs {
		if !want(f) {
			continue
		}
		if *dumpIR {
			fmt.Printf("=== IR %s\n%s\n", f.Name, f)
		}
		if *dumpAsm {
			id := c.Output.Prog.FuncID(f.Name)
			fmt.Printf("=== asm %s\n%s\n", f.Name, c.Output.Prog.Segs[id].Disasm())
		}
	}
	if *dumpAnalysis {
		for r, sr := range c.Splits {
			fmt.Printf("=== analysis %s region %d\n", r.Fn.Name, r.ID)
			res := sr.Analysis
			fmt.Printf("run-time constants:")
			for _, v := range sortedConsts(res.Const) {
				name := r.Fn.ValueInfo(v).Name
				if name == "" {
					fmt.Printf(" v%d", v)
				} else {
					fmt.Printf(" %s(v%d)", name, v)
				}
			}
			fmt.Println()
			for _, b := range r.Fn.Blocks {
				if b.Region != r || b.Setup {
					continue
				}
				mark := ""
				if res.ConstMerge[b] && len(b.Preds) > 1 {
					mark = "  [constant merge]"
				}
				fmt.Printf("  b%d reach %s%s\n", b.ID, res.BlockReach[b], mark)
			}
			fmt.Printf("holes (value -> table slot):")
			for v, slot := range sr.Holes {
				fmt.Printf(" v%d->%s", v, slot)
			}
			fmt.Println()
		}
	}
	if *dumpTmpl {
		for _, tr := range c.Output.Regions {
			if tr.Blocks == nil {
				continue
			}
			fmt.Printf("=== %s\n%s\n", tr.Name, tr.Dump())
		}
	}
	fmt.Printf("compiled %d functions, %d dynamic regions\n",
		len(c.Module.Funcs), len(c.Output.Regions))
}
