// Command dyncc compiles a MiniC source file and dumps the requested
// compilation artifacts: the IR (with region/template/set-up structure),
// the generated VM assembly, and each dynamic region's templates, holes and
// stitcher directives.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dyncc/internal/core"
	"dyncc/internal/ir"
)

// passList collects -disable-pass values (repeatable, comma-separated).
type passList []string

func (l *passList) String() string { return strings.Join(*l, ",") }

func (l *passList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*l = append(*l, s)
		}
	}
	return nil
}

// sortedConsts returns the constant values in ascending order.
func sortedConsts(m map[ir.Value]bool) []ir.Value {
	var vs []ir.Value
	for v, ok := range m {
		if ok {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

func main() {
	dynamic := flag.Bool("dynamic", true, "compile dynamic regions (false = static baseline)")
	optimize := flag.Bool("O", true, "run the static optimizer")
	dumpIR := flag.Bool("ir", false, "dump the compiled IR of every function")
	dumpAsm := flag.Bool("asm", false, "dump the VM assembly of every function")
	dumpTmpl := flag.Bool("templates", true, "dump each region's templates and directives")
	dumpAnalysis := flag.Bool("analysis", false, "dump run-time-constant and reachability results per region")
	fn := flag.String("func", "", "restrict dumps to one function")
	dumpir := flag.String("dumpir", "", "dump IR after the named pipeline pass ('all' = every module-mutating pass)")
	var disable passList
	flag.Var(&disable, "disable-pass", "disable a pipeline pass by name (repeatable, comma-separated; e.g. dce,cse)")
	passTimes := flag.Bool("passtimes", false, "report per-pass compile timings")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dyncc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyncc:", err)
		os.Exit(1)
	}
	cfg := core.Config{Dynamic: *dynamic, Optimize: *optimize, DisablePasses: disable}
	if *dumpir != "" {
		cfg.DumpIR = func(pass, f, text string) {
			if *dumpir != "all" && *dumpir != pass {
				return
			}
			if *fn != "" && f != *fn {
				return
			}
			fmt.Printf("=== ir after %s: %s\n%s\n", pass, f, text)
		}
	}
	c, err := core.Compile(string(src), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyncc:", err)
		os.Exit(1)
	}
	if *passTimes {
		fmt.Println("=== pass timings")
		for _, st := range c.Stats {
			fmt.Printf("  %-12s %10v  runs %d  changes %d\n",
				st.Pass, st.Duration, st.Runs, st.Changes)
		}
	}

	want := func(f *ir.Func) bool { return *fn == "" || f.Name == *fn }
	for _, f := range c.Module.Funcs {
		if !want(f) {
			continue
		}
		if *dumpIR {
			fmt.Printf("=== IR %s\n%s\n", f.Name, f)
		}
		if *dumpAsm {
			id := c.Output.Prog.FuncID(f.Name)
			fmt.Printf("=== asm %s\n%s\n", f.Name, c.Output.Prog.Segs[id].Disasm())
		}
	}
	if *dumpAnalysis {
		for r, sr := range c.Splits {
			fmt.Printf("=== analysis %s region %d\n", r.Fn.Name, r.ID)
			res := sr.Analysis
			fmt.Printf("run-time constants:")
			for _, v := range sortedConsts(res.Const) {
				name := r.Fn.ValueInfo(v).Name
				if name == "" {
					fmt.Printf(" v%d", v)
				} else {
					fmt.Printf(" %s(v%d)", name, v)
				}
			}
			fmt.Println()
			for _, b := range r.Fn.Blocks {
				if b.Region != r || b.Setup {
					continue
				}
				mark := ""
				if res.ConstMerge[b] && len(b.Preds) > 1 {
					mark = "  [constant merge]"
				}
				fmt.Printf("  b%d reach %s%s\n", b.ID, res.BlockReach[b], mark)
			}
			fmt.Printf("holes (value -> table slot):")
			for v, slot := range sr.Holes {
				fmt.Printf(" v%d->%s", v, slot)
			}
			fmt.Println()
		}
	}
	if *dumpTmpl {
		for _, tr := range c.Output.Regions {
			if tr.Blocks == nil {
				continue
			}
			fmt.Printf("=== %s\n%s\n", tr.Name, tr.Dump())
		}
	}
	fmt.Printf("compiled %d functions, %d dynamic regions\n",
		len(c.Module.Funcs), len(c.Output.Regions))
}
