package dyncc

import (
	"sync"
	"testing"
)

// Program.Close and Program.WaitIdle are idempotent and safe to call
// concurrently, in any order, and after Close — the public-API face of the
// runtime's close/schedule handshake (double-Close used to be unspecified).
func TestProgramCloseIdempotent(t *testing.T) {
	src := `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`
	for _, async := range []bool{false, true} {
		p, err := Compile(src, Config{Dynamic: true, Optimize: true,
			Cache: CacheOptions{AsyncStitch: async}})
		if err != nil {
			t.Fatal(err)
		}
		m := p.NewMachine(0)
		for k := int64(1); k <= 16; k++ {
			if got, err := m.Call("scale", k, 3); err != nil || got != 3*k {
				t.Fatalf("scale(%d,3) = %d, %v", k, got, err)
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Close()
				p.WaitIdle()
				p.Close()
			}()
		}
		wg.Wait()
		p.Close()
		p.WaitIdle()
		// Still serving after Close (async cold keys fall back or stitch
		// inline; nothing hangs or errors).
		for k := int64(50); k <= 60; k++ {
			if got, err := m.Call("scale", k, 9); err != nil || got != 9*k {
				t.Fatalf("post-close scale(%d,9) = %d, %v (async=%v)", k, got, err, async)
			}
		}
	}
}
