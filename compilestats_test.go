package dyncc

import "testing"

// TestCompileStats checks the pipeline observability contract at the API
// surface: every registered pass reports a non-zero duration, the
// optimizer sub-passes appear individually, interposed verification is
// accounted, and DisablePasses/DumpIR round-trip through Config.
func TestCompileStats(t *testing.T) {
	src := `
int f(int c, int x) {
    int r = 0;
    dynamicRegion (c) {
        r = x * c + 2 * 3;
    }
    return r;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	stats := p.CompileStats()
	byName := map[string]PassStat{}
	for _, st := range stats {
		byName[st.Name] = st
		if st.Duration <= 0 {
			t.Errorf("pass %s: zero duration", st.Name)
		}
		if st.Runs == 0 {
			t.Errorf("pass %s: zero runs", st.Name)
		}
	}
	for _, want := range []string{"parse", "lower", "ssa", "const-fold", "simplify",
		"branch-fold", "copy-prop", "cse", "dce", "optimize", "split", "codegen", "verify"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("pass %s missing from CompileStats (have %d passes)", want, len(stats))
		}
	}
	if byName["const-fold"].Changes == 0 {
		t.Error("const-fold reported no changes for 2*3")
	}
	if byName["verify"].Runs < len(stats)-2 {
		t.Errorf("verify ran only %d times", byName["verify"].Runs)
	}
}

func TestConfigDisableAndDump(t *testing.T) {
	src := `int f(int x) { return x * 8; }`
	dumped := map[string]bool{}
	p, err := Compile(src, Config{Optimize: true,
		DisablePasses: []string{"simplify"},
		DumpIR:        func(pass, fn, text string) { dumped[pass] = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range p.CompileStats() {
		if st.Name == "simplify" {
			t.Error("disabled pass present in stats")
		}
	}
	if !dumped["lower"] || !dumped["ssa"] || !dumped["split"] {
		t.Errorf("missing structural dumps: %v", dumped)
	}
	if dumped["simplify"] {
		t.Error("disabled pass dumped IR")
	}
	// x*8 stays a multiply without simplify's strength reduction, and the
	// program still computes the right answer.
	if got := runI(t, p, "f", 5); got != 40 {
		t.Errorf("f(5) = %d", got)
	}

	if _, err := Compile(src, Config{Optimize: true,
		DisablePasses: []string{"not-a-pass"}}); err == nil {
		t.Error("unknown pass name accepted")
	}
}
