package dyncc_test

import (
	"testing"

	"dyncc"
)

// autoExactSrc is a program with rich observable state — per-call return
// values, array mutations, a global accumulator — whose only function is
// an automatic-promotion candidate (scalar int params, no calls, no
// address-of). The exactness tests drive it through promotion and
// guard-failure deoptimization and require every observable identical to a
// never-promoted run.
const autoExactSrc = `
int g;

int step(int k, int i, int *a, int n) {
    int j;
    int s;
    s = 0;
    for (j = 0; j < n; j++) {
        a[j] = a[j] + k * i;
        s = s + a[j];
    }
    g = g + s;
    return s ^ k;
}

int readg() {
    return g + 0;
}
`

// autoWorkload drives one machine through the exactness workload: calls
// with a stable key tuple, then a key flip mid-stream, then more calls.
// Returns every observable: per-call outputs, final array contents, the
// global accumulator, and the region invocation count.
func autoWorkload(t *testing.T, cfg dyncc.Config) (outs []int64, arr []int64, g int64, invocations uint64) {
	t.Helper()
	p, err := dyncc.Compile(autoExactSrc, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if cfg.AutoRegion && p.NumRegions() == 0 {
		t.Fatalf("autoregion pass promoted no region")
	}
	m := p.NewMachine(0)
	const n = 6
	va, err := m.Alloc(n)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	call := func(k, i int64) {
		v, err := m.Call("step", k, i, va, n)
		if err != nil {
			t.Fatalf("step(%d,%d): %v", k, i, err)
		}
		outs = append(outs, v)
	}
	// Stable phase (promotes under aggressive thresholds), a mid-workload
	// key flip (fails the guard on the monomorphic path), then a second
	// stable phase on the new key.
	for c := 0; c < 8; c++ {
		call(3, 2)
	}
	for c := 0; c < 8; c++ {
		call(5, 2)
	}
	arr = append(arr, m.Mem()[va:va+n]...)
	g, err = m.Call("readg")
	if err != nil {
		t.Fatalf("readg: %v", err)
	}
	if cfg.AutoRegion {
		invocations = m.Region(0).Invocations
	}
	return outs, arr, g, invocations
}

// TestAutoDeoptExactness: a guard failure mid-workload must leave every
// program-observable — call outputs, mutated array, global state, region
// invocation counts — identical to a run that never promoted. (Cycle
// counts legitimately differ: promotion skips set-up and guards cost a
// branch each; exactness is about program semantics.)
func TestAutoDeoptExactness(t *testing.T) {
	speculative := dyncc.Config{
		Dynamic: true, Optimize: true, AutoRegion: true,
		AutoPromoteThreshold: 3, AutoStabilityWindow: 2,
	}
	// Same build, but the threshold is unreachable: the region profiles
	// forever and never promotes — the semantic baseline.
	never := speculative
	never.AutoPromoteThreshold = 1 << 30

	specOuts, specArr, specG, specInv := autoWorkload(t, speculative)
	baseOuts, baseArr, baseG, baseInv := autoWorkload(t, never)

	for i := range specOuts {
		if specOuts[i] != baseOuts[i] {
			t.Fatalf("call %d diverges: promoted %d, never-promoted %d",
				i, specOuts[i], baseOuts[i])
		}
	}
	for i := range specArr {
		if specArr[i] != baseArr[i] {
			t.Fatalf("array word %d diverges: promoted %d, never-promoted %d",
				i, specArr[i], baseArr[i])
		}
	}
	if specG != baseG {
		t.Fatalf("global diverges: promoted %d, never-promoted %d", specG, baseG)
	}
	if specInv != baseInv {
		t.Fatalf("invocations diverge: promoted %d, never-promoted %d — deopt double-counts or skips region entry",
			specInv, baseInv)
	}
}

// TestAutoDeoptStats asserts the exactness workload actually exercised the
// machinery: the stable phase promoted and the key flip deoptimized.
func TestAutoDeoptStats(t *testing.T) {
	cfg := dyncc.Config{
		Dynamic: true, Optimize: true, AutoRegion: true,
		AutoPromoteThreshold: 3, AutoStabilityWindow: 2,
	}
	p, err := dyncc.Compile(autoExactSrc, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := p.NewMachine(0)
	va, err := m.Alloc(6)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	for c := 0; c < 8; c++ {
		if _, err := m.Call("step", 3, 2, va, 6); err != nil {
			t.Fatalf("call: %v", err)
		}
	}
	cs := p.CacheStats()
	if cs.Promotions != 1 {
		t.Fatalf("stable phase: got %d promotions, want 1", cs.Promotions)
	}
	if cs.Deopts != 0 {
		t.Fatalf("stable phase: got %d deopts, want 0", cs.Deopts)
	}
	if _, err := m.Call("step", 5, 2, va, 6); err != nil {
		t.Fatalf("flip call: %v", err)
	}
	cs = p.CacheStats()
	if cs.Deopts != 1 {
		t.Fatalf("key flip: got %d deopts, want 1", cs.Deopts)
	}
}

// autoHelperSrc is an automatic-promotion candidate that calls a small
// helper. Before the demand-driven inline pass existed, any call
// disqualified a function from promotion; now an inlinable callee is fine
// because the graft happens before the region splitter ever sees the body.
const autoHelperSrc = `
int scale(int k, int i) {
    return k * i + (k >> 1);
}

int hstep(int k, int i, int *a, int n) {
    int j;
    int s;
    s = 0;
    for (j = 0; j < n; j++) {
        a[j] = a[j] + scale(k, i);
        s = s + a[j];
    }
    return s ^ k;
}
`

// TestAutoPromoteThroughCall: the formerly call-blocked hstep must
// auto-promote, stitch on its stable key, deoptimize exactly once on a key
// flip, and stay observably identical to a never-promoted run. With the
// inline pass ablated, the very same build must refuse to promote — the
// residual call disqualifies it again.
func TestAutoPromoteThroughCall(t *testing.T) {
	cfg := dyncc.Config{
		Dynamic: true, Optimize: true, AutoRegion: true,
		AutoPromoteThreshold: 3, AutoStabilityWindow: 2,
	}

	workload := func(t *testing.T, cfg dyncc.Config) (outs []int64, arr []int64) {
		t.Helper()
		p, err := dyncc.Compile(autoHelperSrc, cfg)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if len(p.IR("hstep").Regions) == 0 {
			t.Fatalf("helper-calling function did not auto-promote")
		}
		if len(p.IR("scale").Regions) != 0 {
			t.Fatalf("helper destined for grafting was promoted itself")
		}
		m := p.NewMachine(0)
		const n = 5
		va, err := m.Alloc(n)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		for c := 0; c < 8; c++ {
			v, err := m.Call("hstep", 3, 2, va, n)
			if err != nil {
				t.Fatalf("hstep: %v", err)
			}
			outs = append(outs, v)
		}
		for c := 0; c < 8; c++ {
			v, err := m.Call("hstep", 7, 2, va, n)
			if err != nil {
				t.Fatalf("hstep flip: %v", err)
			}
			outs = append(outs, v)
		}
		arr = append(arr, m.Mem()[va:va+n]...)
		// The stable phase must actually promote and the flip deoptimize —
		// unless the thresholds made promotion unreachable (the baseline).
		cs := p.CacheStats()
		if cfg.AutoPromoteThreshold < 1<<20 {
			if cs.Promotions == 0 {
				t.Fatalf("stable phase never promoted")
			}
			if cs.Deopts != 1 {
				t.Fatalf("key flip: got %d deopts, want 1", cs.Deopts)
			}
		}
		return outs, arr
	}

	specOuts, specArr := workload(t, cfg)
	never := cfg
	never.AutoPromoteThreshold = 1 << 30
	baseOuts, baseArr := workload(t, never)
	for i := range specOuts {
		if specOuts[i] != baseOuts[i] {
			t.Fatalf("call %d diverges: promoted %d, never-promoted %d",
				i, specOuts[i], baseOuts[i])
		}
	}
	for i := range specArr {
		if specArr[i] != baseArr[i] {
			t.Fatalf("array word %d diverges: promoted %d, never-promoted %d",
				i, specArr[i], baseArr[i])
		}
	}

	// Ablate inlining: the call is residual again, so hstep must not
	// promote — proof that the lift is what unlocked it. (The call-free
	// scale is still a candidate on its own; only hstep is the point.)
	ablated := cfg
	ablated.DisablePasses = []string{"inline"}
	p, err := dyncc.Compile(autoHelperSrc, ablated)
	if err != nil {
		t.Fatalf("ablated compile: %v", err)
	}
	if len(p.IR("hstep").Regions) != 0 {
		t.Fatalf("inline-ablated build promoted a call-bearing function")
	}
}

// TestAutoPhaseChangeHysteresis flips a "stable" operand every few calls —
// the adversarial workload for speculation. Deoptimization backoff must
// prevent promote/deopt livelock: deopts grow logarithmically (threshold
// multiplies by the backoff factor each time), not linearly with the
// number of phase changes, and every call still returns the right answer.
func TestAutoPhaseChangeHysteresis(t *testing.T) {
	cfg := dyncc.Config{
		Dynamic: true, Optimize: true, AutoRegion: true,
		AutoPromoteThreshold: 3, AutoStabilityWindow: 2, AutoBackoffFactor: 4,
	}
	p, err := dyncc.Compile(autoExactSrc, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := p.NewMachine(0)
	const n = 6
	va, err := m.Alloc(n)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	// Shadow model of the program, for per-call correctness.
	shadow := make([]int64, n)
	var shadowG int64
	const (
		calls    = 400
		phaseLen = 4
	)
	for c := 0; c < calls; c++ {
		k := int64(3)
		if (c/phaseLen)%2 == 1 {
			k = 5
		}
		got, err := m.Call("step", k, 2, va, n)
		if err != nil {
			t.Fatalf("call %d: %v", c, err)
		}
		var s int64
		for j := range shadow {
			shadow[j] += k * 2
			s += shadow[j]
		}
		shadowG += s
		if got != s^k {
			t.Fatalf("call %d (k=%d): got %d, want %d", c, k, got, s^k)
		}
	}
	cs := p.CacheStats()
	phases := uint64(calls / phaseLen)
	if cs.Deopts >= phases/2 {
		t.Fatalf("livelock: %d deopts over %d phase changes — backoff is not damping re-promotion",
			cs.Deopts, phases)
	}
	if cs.Deopts == 0 || cs.Promotions == 0 {
		t.Fatalf("workload did not exercise speculation: %d promotions, %d deopts",
			cs.Promotions, cs.Deopts)
	}
	t.Logf("%d calls, %d phase changes: %d promotions, %d deopts",
		calls, phases, cs.Promotions, cs.Deopts)
	g, err := m.Call("readg")
	if err != nil {
		t.Fatalf("readg: %v", err)
	}
	if g != shadowG {
		t.Fatalf("global diverges: got %d, want %d", g, shadowG)
	}
}
