package dyncc

import (
	"os"
	"path/filepath"
	"testing"
)

// Every program under testdata/ must compile and run identically in static
// and dynamic mode (they double as documentation examples for cmd/dyncc
// and cmd/dynrun).
func TestTestdataPrograms(t *testing.T) {
	cases := map[string]struct {
		fn   string
		args []int64
		want int64
	}{
		"fib.mc":        {fn: "fib", args: []int64{20}, want: 6765},
		"power.mc":      {fn: "power", args: []int64{3, 10}, want: 59049},
		"dotproduct.mc": {fn: "buildAndDot", want: 1*10 + 2*9 + 3*8 + 4*7},
		// apply: mad(5,3)=16, then Σ mad(5, a[i]) for a = 1..4 = 54.
		"inlinecalls.mc": {fn: "buildAndApply", want: 70},
	}
	files, err := filepath.Glob("testdata/*.mc")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata: %v", err)
	}
	for _, f := range files {
		name := filepath.Base(f)
		tc, ok := cases[name]
		if !ok {
			t.Errorf("%s: no expectation registered", name)
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{Dynamic: false, Optimize: true},
			{Dynamic: true, Optimize: true},
			{Dynamic: true, Optimize: true, MergedStitch: true},
		} {
			p, err := Compile(string(src), cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			m := p.NewMachine(0)
			got, err := m.Call(tc.fn, tc.args...)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			if got != tc.want {
				t.Errorf("%s %+v: %s = %d, want %d", name, cfg, tc.fn, got, tc.want)
			}
		}
	}
}

// power.mc's squaring loop is governed by the run-time-constant exponent
// and annotated for complete unrolling: the stitched code is straight-line
// (no backward branches), one squaring chain per exponent key.
func TestPowerSpecialization(t *testing.T) {
	src, err := os.ReadFile("testdata/power.mc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(string(src), Config{Dynamic: true, Optimize: true,
		Cache: CacheOptions{KeepStitched: true}})
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	for _, e := range []int64{0, 1, 5, 10} {
		got, err := m.Call("power", 2, e)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1)
		for i := int64(0); i < e; i++ {
			want *= 2
		}
		if got != want {
			t.Errorf("2^%d = %d, want %d", e, got, want)
		}
	}
	if m.Region(0).Compiles != 4 {
		t.Errorf("compiles: %d, want 4 (keyed by exponent)", m.Region(0).Compiles)
	}
	// Straight-line specialization: no backward branches in stitched code.
	for _, segs := range p.c.Runtime.Stitched {
		for _, seg := range segs {
			for pc, in := range seg.Code {
				switch in.Op.String() {
				case "br", "beqz", "bnez", "beqi":
					if in.Target <= pc {
						t.Errorf("backward branch at %d in %s", pc, seg.Name)
					}
				}
			}
		}
	}
}
