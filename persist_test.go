package dyncc

import (
	"bytes"
	"testing"

	"dyncc/internal/segio"
)

// The persistent L0 round trip through the public API: compile and run a
// program over an on-disk store, Close to drain the publisher, then compile
// the same source into a fresh Program (a simulated process restart) over
// the same directory. The cold program must serve every specialization from
// the store — no new stitches — with byte-identical code, and the store
// tier must stay invisible to results and to the lookup invariant.
func TestPersistentStoreRoundTrip(t *testing.T) {
	src := `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s + (s * s);
    }
    return r;
}`
	dir := t.TempDir()
	open := func() (*Program, *DirStore) {
		store, err := OpenDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(src, Config{Dynamic: true, Optimize: true,
			Cache: CacheOptions{Store: store, KeepStitched: true}})
		if err != nil {
			t.Fatal(err)
		}
		return p, store
	}
	run := func(p *Program, phase string) {
		m := p.NewMachine(0)
		for k := int64(1); k <= 8; k++ {
			got, err := m.Call("scale", k, 3)
			if err != nil || got != 3*k+k*k {
				t.Fatalf("%s: scale(%d,3) = %d, %v", phase, k, got, err)
			}
		}
	}

	warm, store := open()
	run(warm, "warm")
	warm.Close() // drains the store publisher
	wcs := warm.CacheStats()
	if wcs.StorePuts == 0 || wcs.StoreErrors != 0 || wcs.StoreHits != 0 {
		t.Fatalf("warm store counters: %+v", wcs)
	}
	if n, err := store.Len(); err != nil || uint64(n) != wcs.StorePuts {
		t.Fatalf("store holds %d blobs (%v), %d puts counted", n, err, wcs.StorePuts)
	}

	cold, _ := open()
	defer cold.Close()
	run(cold, "cold")
	ccs := cold.CacheStats()
	if ccs.StoreHits != wcs.StorePuts || ccs.Stitches != 0 || ccs.StoreErrors != 0 {
		t.Fatalf("cold store counters: %+v (warm puts %d)", ccs, wcs.StorePuts)
	}
	for _, cs := range []RuntimeCacheStats{wcs, ccs} {
		if cs.Lookups != cs.SharedHits+cs.Waits+cs.FailedHits+cs.Misses {
			t.Fatalf("lookup invariant broken: %+v", cs)
		}
	}

	// Byte identity of the served code, via the canonical encoding.
	ws, cc := warm.c.Runtime.Stitched[0], cold.c.Runtime.Stitched[0]
	if len(ws) != len(cc) || len(ws) == 0 {
		t.Fatalf("retained %d warm vs %d cold segments", len(ws), len(cc))
	}
	for i := range ws {
		if !bytes.Equal(segio.Encode(ws[i]), segio.Encode(cc[i])) {
			t.Fatalf("segment %d: store-served encoding differs from inline stitch", i)
		}
	}

	// Invalidation must not resurrect stale persisted code: after a key
	// invalidation, a fresh runtime over the same store re-stitches.
	cold.InvalidateKey(0, 3)
	cold.WaitIdle()
	m := cold.NewMachine(0)
	if got, err := m.Call("scale", 3, 5); err != nil || got != 5*3+9 {
		t.Fatalf("post-invalidate scale(3,5) = %d, %v", got, err)
	}
	if cs := cold.CacheStats(); cs.Stitches == 0 {
		t.Fatalf("invalidated key was served without a re-stitch: %+v", cs)
	}
}
